//! Top-level commit: the lock-free helping algorithm of JVSTM (paper
//! §III-A), plus a coarse global-mutex strategy kept for the A1 ablation.
//!
//! A committing read-write transaction:
//!
//! 1. validates its read-set (no box it read gained a committed — or
//!    enqueued-to-commit — version newer than its snapshot);
//! 2. enqueues a commit record by CAS-ing the chain tail, which atomically
//!    assigns it the next version number;
//! 3. *helps*: writes back every not-yet-written record up to and including
//!    its own (idempotently — several threads may replay the same record),
//!    publishing the global clock after each record completes.
//!
//! Step 3 is the paper's "helping mechanism to implement the following two
//! steps in a non-blocking, yet atomic, fashion: increasing the global
//! counter and writing-back the values from the transaction's write-set".
//! A thread that stalls after enqueueing cannot block others: any later
//! committer (or reader that needs the clock to advance) completes the
//! write-back on its behalf.
//!
//! Memory reclamation of chain records uses `crossbeam-epoch`.

use crossbeam_epoch::{self as epoch, Atomic, Guard, Owned, Shared};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use rtf_txbase::{ActiveTxnRegistry, GlobalClock, TreeId, Version};
use rtf_txengine::{
    validate_reads_detailed, ConflictKind, ConflictSite, Event, EventSink, ReadSet, WriteEntry,
};

use crate::txn::TopVisibility;

/// How top-level commits serialize their write-back.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CommitStrategy {
    /// JVSTM's lock-free enqueue + helping write-back (the paper's design).
    #[default]
    LockFreeHelping,
    /// A single global mutex around validate + write-back (ablation A1).
    GlobalMutex,
}

/// Validation failure: the transaction must re-execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conflict;

/// The ordered-execution lane's in-order commit gate.
///
/// `wait` blocks until it is the transaction's turn to commit (the
/// cross-transaction analogue of waitTurn, Alg 3) and returns whether the
/// turn actually arrived — `false` means the wait was abandoned (stall
/// watchdog fired, cancellation) and the commit must not proceed. The
/// closure lives in the caller (core) because waiting sensibly means
/// *helping* through the task pool, which mvstm does not know about —
/// and because how the thread actually blocks is a stack-wide policy:
/// core routes the closure into `TicketLane::wait_turn`, whose parking
/// runs on the unified `rtf_txbase::wait` primitives (epoch-token
/// `WaitQueue`, successor-only wakes, thread-park or waker backend; see
/// DESIGN.md §3.14 "Blocking model"). Keeping mvstm behind this closure
/// boundary is what let the blocking core change backends without this
/// crate noticing.
pub struct TurnGate<'a> {
    /// Blocks for the turn; `false` abandons the commit.
    pub wait: &'a mut dyn FnMut() -> bool,
}

/// One write to install at commit (the engine's buffered-write entry).
pub use rtf_txengine::WriteEntry as CommitWrite;

struct Record {
    version: AtomicU64,
    writes: Box<[WriteEntry]>,
    done: AtomicBool,
    prev: Atomic<Record>,
}

/// The global commit chain.
pub struct CommitChain {
    tail: Atomic<Record>,
    mutex: Mutex<()>,
    strategy: CommitStrategy,
}

impl CommitChain {
    /// Creates the chain with a pre-written sentinel at version 0.
    pub fn new(strategy: CommitStrategy) -> Self {
        let sentinel = Record {
            version: AtomicU64::new(0),
            writes: Box::new([]),
            done: AtomicBool::new(true),
            prev: Atomic::null(),
        };
        CommitChain { tail: Atomic::new(sentinel), mutex: Mutex::new(()), strategy }
    }

    /// The configured strategy.
    pub fn strategy(&self) -> CommitStrategy {
        self.strategy
    }

    /// Validates and commits a read-write top-level transaction.
    ///
    /// `reads` records the write token observed for each box read; `writes`
    /// is the private write-set to install. Returns the commit version on
    /// success. Instrumentation (helped write-backs, GC trims) is reported
    /// to `sink`.
    ///
    /// No snapshot version is needed: validation compares write tokens, and
    /// "the token I read is still the newest" is exactly "nothing newer than
    /// my snapshot committed" (tokens are unique per write).
    pub fn try_commit(
        &self,
        reads: &ReadSet,
        writes: Vec<WriteEntry>,
        clock: &GlobalClock,
        registry: &ActiveTxnRegistry,
        sink: &dyn EventSink,
    ) -> Result<Version, Conflict> {
        debug_assert!(!writes.is_empty(), "read-only transactions skip the commit chain");
        // Injected abort: behave exactly like a failed validation, so the
        // caller's re-execution machinery is what gets exercised.
        if rtf_txfault::fail_point!("mvstm.commit.validate").is_abort() {
            return Err(Conflict);
        }
        match self.strategy {
            CommitStrategy::GlobalMutex => self.commit_mutex(reads, writes, clock, registry, sink),
            CommitStrategy::LockFreeHelping => {
                self.commit_lockfree(reads, writes, clock, registry, sink)
            }
        }
    }

    /// [`CommitChain::try_commit`] behind an optional in-order gate: when
    /// `gate` is present the commit first waits for its ticket's turn, so
    /// the chain's version order extends the predefined ticket order.
    ///
    /// The caller must hold the turn through the entire enqueue +
    /// write-back (i.e. retire its ticket only after this returns): the
    /// gate serializes *entry* into the chain, and because each committer
    /// CASes the tail before its successor may enter, per-lane ticket order
    /// and chain version order coincide.
    pub fn try_commit_gated(
        &self,
        gate: Option<TurnGate<'_>>,
        reads: &ReadSet,
        writes: Vec<WriteEntry>,
        clock: &GlobalClock,
        registry: &ActiveTxnRegistry,
        sink: &dyn EventSink,
    ) -> Result<Version, Conflict> {
        if let Some(gate) = gate {
            // Injected abort at the ticket handoff: the ticket is abandoned
            // by the caller's abort path, exercising hole-skipping in the
            // lane.
            if rtf_txfault::fail_point!("mvstm.commit.ticket").is_abort() {
                return Err(Conflict);
            }
            if !(gate.wait)() {
                return Err(Conflict);
            }
        }
        self.try_commit(reads, writes, clock, registry, sink)
    }

    /// Read-set-only validation for empty-write-set (read-only) top-level
    /// commits in the ordered lane. A read-only transaction publishes
    /// nothing, so the unordered fast path skips validation entirely and
    /// serializes at its snapshot — but a *ticketed* one must serialize at
    /// its ticket position, so once the turn is won its reads must still
    /// be current. Returns `Err(Conflict)` (reporting the displaced cell)
    /// when they are not; the caller re-executes at the same position.
    pub fn validate_ro(&self, reads: &ReadSet, sink: &dyn EventSink) -> Result<(), Conflict> {
        if rtf_txfault::fail_point!("mvstm.commit.validate").is_abort() {
            return Err(Conflict);
        }
        let site = match self.strategy {
            CommitStrategy::GlobalMutex => {
                let _g = self.mutex.lock();
                validate_reads_detailed(reads.iter(), |_| TopVisibility::latest()).err()
            }
            CommitStrategy::LockFreeHelping => {
                let guard = epoch::pin();
                let tail = self.tail.load(Ordering::Acquire, &guard);
                self.validate_against(tail, reads, &guard).err()
            }
        };
        match site {
            Some(site) => {
                Self::report_conflict(sink, site);
                Err(Conflict)
            }
            None => Ok(()),
        }
    }

    /// Reports an attributed top-level validation failure to the sink.
    fn report_conflict(sink: &dyn EventSink, site: ConflictSite) {
        sink.event(Event::Conflict {
            kind: ConflictKind::TopValidation,
            cell: site.cell,
            writer_tree: site.writer_tree,
        });
    }

    fn commit_mutex(
        &self,
        reads: &ReadSet,
        writes: Vec<WriteEntry>,
        clock: &GlobalClock,
        registry: &ActiveTxnRegistry,
        sink: &dyn EventSink,
    ) -> Result<Version, Conflict> {
        let _g = self.mutex.lock();
        if let Err(site) = validate_reads_detailed(reads.iter(), |_| TopVisibility::latest()) {
            Self::report_conflict(sink, site);
            return Err(Conflict);
        }
        let version = clock.now() + 1;
        let watermark = registry.min_active(clock.now());
        for w in writes {
            w.cell.apply_commit(version, w.value, w.token, watermark);
        }
        clock.publish(version);
        Ok(version)
    }

    fn commit_lockfree(
        &self,
        reads: &ReadSet,
        writes: Vec<WriteEntry>,
        clock: &GlobalClock,
        registry: &ActiveTxnRegistry,
        sink: &dyn EventSink,
    ) -> Result<Version, Conflict> {
        let guard = epoch::pin();
        let mut newrec = Owned::new(Record {
            version: AtomicU64::new(0),
            writes: writes.into_boxed_slice(),
            done: AtomicBool::new(false),
            prev: Atomic::null(),
        });
        let me = loop {
            let tail = self.tail.load(Ordering::Acquire, &guard);
            // Full (re-)validation per attempt: enqueued-but-unwritten
            // records first, then the permanent state. See module docs for
            // why this two-part check cannot miss a conflicting commit.
            if let Err(site) = self.validate_against(tail, reads, &guard) {
                Self::report_conflict(sink, site);
                // `newrec` (and the write values it owns) drop here.
                return Err(Conflict);
            }
            // Delay here widens the validate→enqueue window, forcing CAS
            // retries and full re-validations on the loser.
            rtf_txfault::fail_point!("mvstm.commit.enqueue");
            let tail_ver = unsafe { tail.deref() }.version.load(Ordering::Acquire);
            newrec.version.store(tail_ver + 1, Ordering::Relaxed);
            newrec.prev.store(tail, Ordering::Relaxed);
            match self.tail.compare_exchange(
                tail,
                newrec,
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            ) {
                Ok(me) => break me,
                Err(e) => newrec = e.new,
            }
        };
        let my_version = unsafe { me.deref() }.version.load(Ordering::Relaxed);
        self.write_back_through(me, clock, registry, sink, &guard);
        unsafe { self.cleanup(me, &guard) };
        Ok(my_version)
    }

    /// Chain + permanent validation. `tail` is the current chain tail. A
    /// failure names the conflicted cell ([`ConflictSite`]); the displacing
    /// write is a (pending or permanent) top-level commit either way, so no
    /// writer tree is attributed.
    fn validate_against(
        &self,
        tail: Shared<'_, Record>,
        reads: &ReadSet,
        guard: &Guard,
    ) -> Result<(), ConflictSite> {
        // Part 1: enqueued records that are not yet written back. Their
        // writes are invisible in the permanent lists but will commit with a
        // version greater than `start`, so overlap with the read-set is a
        // conflict.
        let mut cur = tail;
        while let Some(rec) = unsafe { cur.as_ref() } {
            if rec.done.load(Ordering::Acquire) {
                break;
            }
            for w in rec.writes.iter() {
                if reads.contains(w.cell.id()) {
                    return Err(ConflictSite { cell: w.cell.id(), writer_tree: TreeId::NONE });
                }
            }
            cur = rec.prev.load(Ordering::Acquire, guard);
        }
        // Part 2: committed state, via the engine's single validation loop —
        // a read stays valid iff re-resolving against the latest committed
        // state observes the same write token (JVSTM read-set validation).
        validate_reads_detailed(reads.iter(), |_| TopVisibility::latest())
    }

    /// Writes back every unwritten record up to and including `me`, oldest
    /// first; idempotent and performed by any number of helping threads.
    fn write_back_through(
        &self,
        me: Shared<'_, Record>,
        clock: &GlobalClock,
        registry: &ActiveTxnRegistry,
        sink: &dyn EventSink,
        guard: &Guard,
    ) {
        // Collect the unwritten suffix (me .. first done record].
        let mut pending: Vec<Shared<'_, Record>> = Vec::new();
        let mut cur = me;
        while let Some(rec) = unsafe { cur.as_ref() } {
            if rec.done.load(Ordering::Acquire) {
                break;
            }
            pending.push(cur);
            cur = rec.prev.load(Ordering::Acquire, guard);
        }
        let watermark = registry.min_active(clock.now());
        for shared in pending.into_iter().rev() {
            let rec = unsafe { shared.deref() };
            if rec.done.load(Ordering::Acquire) {
                continue; // another helper finished it meanwhile
            }
            // A stalled write-back is exactly what the helping protocol
            // exists for: a delay here must be recovered by other committers
            // replaying the record.
            rtf_txfault::fail_point!("mvstm.commit.writeback");
            let version = rec.version.load(Ordering::Relaxed);
            let mut gced = 0;
            for w in rec.writes.iter() {
                gced += w.cell.apply_commit(version, w.value.clone(), w.token, watermark);
            }
            let first = !rec.done.swap(true, Ordering::AcqRel);
            clock.publish(version);
            if first && shared != me {
                sink.event(Event::HelpedWriteback);
            }
            if gced > 0 {
                sink.event(Event::VersionsGced(gced as u64));
            }
        }
    }

    /// Unlinks and reclaims fully-written records from the old end of the
    /// chain. Only records that are done *and* whose own `prev` is already
    /// null are released, so concurrent validators can always walk from the
    /// tail to the first done record.
    unsafe fn cleanup(&self, me: Shared<'_, Record>, guard: &Guard) {
        loop {
            // Find the deepest pair (cur -> p) where p is terminal.
            let mut cur = me;
            let mut victim = None;
            loop {
                let rec = unsafe { cur.deref() };
                let p = rec.prev.load(Ordering::Acquire, guard);
                let Some(pref) = (unsafe { p.as_ref() }) else { break };
                if pref.done.load(Ordering::Acquire)
                    && pref.prev.load(Ordering::Acquire, guard).is_null()
                {
                    victim = Some((cur, p));
                    break;
                }
                cur = p;
            }
            match victim {
                Some((holder, p)) => {
                    let holder_rec = unsafe { holder.deref() };
                    if holder_rec
                        .prev
                        .compare_exchange(
                            p,
                            Shared::null(),
                            Ordering::AcqRel,
                            Ordering::Acquire,
                            guard,
                        )
                        .is_ok()
                    {
                        unsafe { guard.defer_destroy(p) };
                    } else {
                        return; // someone else is cleaning; stop
                    }
                }
                None => return,
            }
        }
    }
}

impl Drop for CommitChain {
    fn drop(&mut self) {
        // Exclusive access: walk the chain and free every record.
        let guard = unsafe { epoch::unprotected() };
        let mut cur = self.tail.load(Ordering::Relaxed, guard);
        while !cur.is_null() {
            let owned = unsafe { cur.into_owned() };
            cur = owned.prev.load(Ordering::Relaxed, guard);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf_txbase::new_write_token;
    use rtf_txengine::{downcast, erase, NullSink, ReadRecord, Source, VBox};
    use std::sync::Arc;

    fn read_obs(b: &VBox<u64>, start: Version) -> ReadRecord {
        let (_, token) = b.cell().read_at(start);
        ReadRecord { cell: Arc::clone(b.cell()), token, source: Source::Permanent, epoch: 0 }
    }

    fn write_of(b: &VBox<u64>, v: u64) -> CommitWrite {
        CommitWrite { cell: Arc::clone(b.cell()), value: erase(v), token: new_write_token() }
    }

    fn harness() -> (CommitChain, GlobalClock, ActiveTxnRegistry) {
        (
            CommitChain::new(CommitStrategy::LockFreeHelping),
            GlobalClock::new(),
            ActiveTxnRegistry::new(),
        )
    }

    #[test]
    fn single_commit_advances_clock_and_writes_back() {
        let (chain, clock, reg) = harness();
        let b = VBox::new(0u64);
        let reads = ReadSet::new();
        let v = chain.try_commit(&reads, vec![write_of(&b, 9)], &clock, &reg, &NullSink).unwrap();
        assert_eq!(v, 1);
        assert_eq!(clock.now(), 1);
        assert_eq!(*downcast::<u64>(b.cell().read_at(1).0), 9);
        assert_eq!(*downcast::<u64>(b.cell().read_at(0).0), 0);
    }

    #[test]
    fn stale_read_conflicts() {
        let (chain, clock, reg) = harness();
        let b = VBox::new(0u64);
        // T1 starts at snapshot 0 and reads b.
        let mut reads = ReadSet::new();
        reads.record(read_obs(&b, 0));
        // T2 commits a write to b.
        chain.try_commit(&ReadSet::new(), vec![write_of(&b, 5)], &clock, &reg, &NullSink).unwrap();
        // T1 now fails validation.
        let r = chain.try_commit(&reads, vec![write_of(&b, 7)], &clock, &reg, &NullSink);
        assert_eq!(r, Err(Conflict));
        assert_eq!(clock.now(), 1);
        assert_eq!(*downcast::<u64>(b.cell().read_at(1).0), 5);
    }

    #[test]
    fn disjoint_writes_all_commit() {
        let (chain, clock, reg) = harness();
        let a = VBox::new(0u64);
        let b = VBox::new(0u64);
        chain.try_commit(&ReadSet::new(), vec![write_of(&a, 1)], &clock, &reg, &NullSink).unwrap();
        chain.try_commit(&ReadSet::new(), vec![write_of(&b, 2)], &clock, &reg, &NullSink).unwrap();
        assert_eq!(clock.now(), 2);
        assert_eq!(*downcast::<u64>(a.cell().read_at(2).0), 1);
        assert_eq!(*downcast::<u64>(b.cell().read_at(2).0), 2);
        // Snapshot 1 sees only the first commit.
        assert_eq!(*downcast::<u64>(b.cell().read_at(1).0), 0);
    }

    #[test]
    fn mutex_strategy_equivalent() {
        let chain = CommitChain::new(CommitStrategy::GlobalMutex);
        let (clock, reg) = (GlobalClock::new(), ActiveTxnRegistry::new());
        let b = VBox::new(0u64);
        let v = chain
            .try_commit(&ReadSet::new(), vec![write_of(&b, 3)], &clock, &reg, &NullSink)
            .unwrap();
        assert_eq!(v, 1);
        let mut reads = ReadSet::new();
        reads.record(read_obs(&b, 0));
        assert_eq!(
            chain.try_commit(&reads, vec![write_of(&b, 4)], &clock, &reg, &NullSink),
            Err(Conflict)
        );
    }

    #[test]
    fn concurrent_counter_increments_serialize() {
        // N threads repeatedly read-modify-write one box through the chain;
        // the final value must equal the number of successful commits.
        let chain = Arc::new(CommitChain::new(CommitStrategy::LockFreeHelping));
        let clock = Arc::new(GlobalClock::new());
        let reg = Arc::new(ActiveTxnRegistry::new());
        let b = VBox::new(0u64);

        let threads = 4;
        let per = 200;
        let total_committed = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let (chain, clock, reg, b, total) = (
                    Arc::clone(&chain),
                    Arc::clone(&clock),
                    Arc::clone(&reg),
                    b.clone(),
                    Arc::clone(&total_committed),
                );
                std::thread::spawn(move || {
                    let mut committed = 0;
                    while committed < per {
                        // Register BEFORE taking the snapshot, like the real
                        // begin path (`TopTxn::new`): registering first pins
                        // the GC watermark at or below the snapshot we then
                        // take; snapshot-then-register leaves a window where
                        // a concurrent write-back trims the version this
                        // reader is about to need.
                        let _reg = reg.register(clock.now());
                        let start = clock.now();
                        let (val, token) = b.cell().read_at(start);
                        let cur = *downcast::<u64>(val);
                        let mut reads = ReadSet::new();
                        reads.record(ReadRecord {
                            cell: Arc::clone(b.cell()),
                            token,
                            source: Source::Permanent,
                            epoch: 0,
                        });
                        let w = CommitWrite {
                            cell: Arc::clone(b.cell()),
                            value: erase(cur + 1),
                            token: new_write_token(),
                        };
                        if chain.try_commit(&reads, vec![w], &clock, &reg, &NullSink).is_ok() {
                            committed += 1;
                            total.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let expected = total_committed.load(Ordering::Relaxed);
        assert_eq!(expected, (threads * per) as u64);
        assert_eq!(*downcast::<u64>(b.cell().read_at(clock.now()).0), expected);
        assert_eq!(clock.now(), expected);
    }

    #[test]
    fn gate_refusal_aborts_without_writing() {
        let (chain, clock, reg) = harness();
        let b = VBox::new(0u64);
        let mut refused = || false;
        let r = chain.try_commit_gated(
            Some(TurnGate { wait: &mut refused }),
            &ReadSet::new(),
            vec![write_of(&b, 1)],
            &clock,
            &reg,
            &NullSink,
        );
        assert_eq!(r, Err(Conflict));
        assert_eq!(clock.now(), 0, "a refused gate must not touch the chain");
        assert_eq!(*downcast::<u64>(b.cell().read_at(0).0), 0);
    }

    #[test]
    fn gate_admission_commits_and_none_gate_is_transparent() {
        let (chain, clock, reg) = harness();
        let b = VBox::new(0u64);
        let mut waited = false;
        let mut admit = || {
            waited = true;
            true
        };
        let v = chain
            .try_commit_gated(
                Some(TurnGate { wait: &mut admit }),
                &ReadSet::new(),
                vec![write_of(&b, 8)],
                &clock,
                &reg,
                &NullSink,
            )
            .unwrap();
        assert_eq!(v, 1);
        assert!(waited, "the gate must have been consulted");
        let v2 = chain
            .try_commit_gated(None, &ReadSet::new(), vec![write_of(&b, 9)], &clock, &reg, &NullSink)
            .unwrap();
        assert_eq!(v2, 2);
        assert_eq!(*downcast::<u64>(b.cell().read_at(2).0), 9);
    }

    #[test]
    fn chain_does_not_grow_unboundedly() {
        let (chain, clock, reg) = harness();
        let b = VBox::new(0u64);
        for i in 0..1000u64 {
            chain
                .try_commit(&ReadSet::new(), vec![write_of(&b, i)], &clock, &reg, &NullSink)
                .unwrap();
        }
        // Walk the chain: it must be short (cleanup keeps only a small tail).
        let guard = epoch::pin();
        let mut len = 0;
        let mut cur = chain.tail.load(Ordering::Acquire, &guard);
        while let Some(rec) = unsafe { cur.as_ref() } {
            len += 1;
            cur = rec.prev.load(Ordering::Acquire, &guard);
        }
        assert!(len <= 4, "chain length {len} after 1000 commits");
    }
}
