//! `rtf-mvstm` — the multi-version STM substrate of the `rtf` stack.
//!
//! This crate is a from-scratch Rust implementation of the JVSTM-style TM
//! that "The Future(s) of Transactional Memory" (ICPP 2016) builds on:
//!
//! * [`VBox`] — versioned boxes holding every committed version a live
//!   transaction may need (plus the tentative list used by the `rtf` core
//!   crate for sub-transactions);
//! * [`TopTxn`] — top-level transactions with snapshot reads, private
//!   write-sets, commit-time read-set validation;
//! * a **lock-free helping commit** ([`commit`] module) replicating JVSTM's
//!   non-blocking global-counter increment + write-back;
//! * a read-only fast path and permanent-version garbage collection.
//!
//! Since the engine extraction, the storage layer ([`VBox`], [`VBoxCell`]),
//! the typed access sets and the read/validate pipeline live in the shared
//! `rtf-txengine` crate (re-exported here); this crate contributes the
//! top-level *visibility policy* ([`txn::TopVisibility`]) and the *commit
//! protocol* (the helping commit chain).
//!
//! Used standalone it is the *baseline* TM of the paper's evaluation
//! (configurations without futures); the `rtf` crate layers transaction
//! trees, tentative versions and the strong-ordering commit protocol on
//! top of it.
//!
//! ```
//! use rtf_mvstm::{MvStm, VBox};
//!
//! let tm = MvStm::new();
//! let balance = VBox::new(100i64);
//! tm.atomic(|tx| {
//!     let b = *tx.read(&balance);
//!     tx.write(&balance, b - 30);
//! });
//! assert_eq!(*balance.read_committed(), 70);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
// Robustness gate: production code must not unwrap or panic ad hoc —
// every residual site carries an audited `allow` naming its invariant
// (tests are exempt).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::panic))]

pub mod commit;
pub mod txn;

use std::sync::Arc;

use rtf_txbase::{ActiveTxnRegistry, GlobalClock, StatSnapshot, TmStats, Version};
use rtf_txengine::{EventSink, RetryDriver, StatsSink, TeeSink};

pub use commit::{CommitStrategy, CommitWrite, Conflict, TurnGate};
pub use rtf_txengine::{
    downcast, erase, retry_backoff, tentative_insert, CellId, PermVersion, ReadSet, TentativeEntry,
    TxData, VBox, VBoxCell, Val, WriteSet,
};
pub use txn::{TopTxn, TopVisibility};

use commit::CommitChain;

/// The multi-version software transactional memory.
///
/// One instance owns an independent clock, commit chain and statistics; a
/// program normally creates a single instance and shares it (`Arc` or by
/// reference) among threads. Boxes ([`VBox`]) are global and not bound to an
/// instance — like JVSTM, the snapshot discipline alone keeps readers
/// consistent — but mixing instances over the same boxes forfeits the
/// opacity guarantee, so don't.
pub struct MvStm {
    clock: GlobalClock,
    registry: ActiveTxnRegistry,
    chain: CommitChain,
    stats: Arc<TmStats>,
    sink: Arc<dyn EventSink>,
}

impl MvStm {
    /// TM with the default (lock-free helping) commit strategy.
    pub fn new() -> Self {
        Self::with_strategy(CommitStrategy::LockFreeHelping)
    }

    /// TM with an explicit commit strategy (ablation A1 uses `GlobalMutex`).
    pub fn with_strategy(strategy: CommitStrategy) -> Self {
        Self::with_strategy_and_extras(strategy, Vec::new())
    }

    /// TM with an explicit commit strategy plus extra instrumentation sinks
    /// (observers, tracers) teed behind the built-in [`StatsSink`]. This is
    /// how the core runtime attaches the observability layer: one sink
    /// serves both the top-level and sub-transaction paths.
    pub fn with_strategy_and_extras(
        strategy: CommitStrategy,
        extras: Vec<Arc<dyn EventSink>>,
    ) -> Self {
        let stats = Arc::new(TmStats::default());
        let stats_sink: Arc<dyn EventSink> = Arc::new(StatsSink::new(Arc::clone(&stats)));
        let sink = if extras.is_empty() {
            stats_sink
        } else {
            let mut sinks = vec![stats_sink];
            sinks.extend(extras);
            Arc::new(TeeSink::new(sinks))
        };
        MvStm {
            clock: GlobalClock::new(),
            registry: ActiveTxnRegistry::new(),
            chain: CommitChain::new(strategy),
            sink,
            stats,
        }
    }

    /// Starts a manually managed read-write transaction.
    pub fn begin(&self) -> TopTxn<'_> {
        TopTxn::new(self, false)
    }

    /// Starts a manually managed transaction declared read-only (writes
    /// panic; reads skip read-set bookkeeping).
    pub fn begin_ro(&self) -> TopTxn<'_> {
        TopTxn::new(self, true)
    }

    /// Runs `body` as an atomic transaction, retrying on conflict until it
    /// commits, and returns its result.
    ///
    /// `body` may run several times; side effects outside the TM must be
    /// idempotent or deferred.
    pub fn atomic<R>(&self, body: impl Fn(&mut TopTxn<'_>) -> R) -> R {
        let mut retry = RetryDriver::new();
        loop {
            let mut tx = self.begin();
            let out = body(&mut tx);
            if tx.try_commit().is_ok() {
                return out;
            }
            retry.backoff();
        }
    }

    /// Runs `body` as a read-only transaction: never validates, never
    /// retries, and panics if `body` attempts a write.
    pub fn atomic_ro<R>(&self, body: impl FnOnce(&mut TopTxn<'_>) -> R) -> R {
        let mut tx = self.begin_ro();
        let out = body(&mut tx);
        let committed = tx.try_commit().expect("read-only transactions cannot conflict");
        debug_assert_eq!(committed, None);
        out
    }

    /// The global version clock.
    #[inline]
    pub fn clock(&self) -> &GlobalClock {
        &self.clock
    }

    /// The active-transaction registry (GC watermark source).
    #[inline]
    pub fn registry(&self) -> &ActiveTxnRegistry {
        &self.registry
    }

    /// The commit chain (used by the core crate's root commit).
    #[inline]
    pub fn chain(&self) -> &CommitChain {
        &self.chain
    }

    /// The instrumentation sink (a [`StatsSink`] over [`MvStm::stats`]).
    #[inline]
    pub fn sink(&self) -> &Arc<dyn EventSink> {
        &self.sink
    }

    /// Event counters.
    #[inline]
    pub fn stats(&self) -> &TmStats {
        &self.stats
    }

    /// Shared handle to the event counters.
    #[inline]
    pub fn stats_arc(&self) -> &Arc<TmStats> {
        &self.stats
    }

    /// Convenience snapshot of the counters.
    pub fn stats_snapshot(&self) -> StatSnapshot {
        self.stats.snapshot()
    }

    /// Current snapshot version (diagnostics).
    pub fn now(&self) -> Version {
        self.clock.now()
    }
}

impl Default for MvStm {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_instances_have_independent_clocks() {
        let tm1 = MvStm::new();
        let tm2 = MvStm::new();
        let b = VBox::new(0u32);
        tm1.atomic(|tx| tx.write(&b, 1));
        assert_eq!(tm1.now(), 1);
        assert_eq!(tm2.now(), 0);
    }

    #[test]
    fn stats_snapshot_reflects_activity() {
        let tm = MvStm::new();
        let b = VBox::new(0u32);
        tm.atomic(|tx| tx.write(&b, 1));
        tm.atomic(|tx| {
            let _ = tx.read(&b);
        });
        let s = tm.stats_snapshot();
        assert_eq!(s.top_commits, 1);
        assert_eq!(s.top_ro_commits, 1);
    }

    #[test]
    fn gc_bounds_version_lists() {
        let tm = MvStm::new();
        let b = VBox::new(0u64);
        for i in 0..500u64 {
            tm.atomic(|tx| tx.write(&b, i));
        }
        // No transaction is live, so each write-back trims behind itself.
        assert!(b.cell().permanent_len() <= 3, "len = {}", b.cell().permanent_len());
    }

    /// Regression test: the GC watermark must cover a transaction that is
    /// between reading the clock and issuing its first read, even while
    /// writers commit and trim aggressively. (The begin path registers
    /// *before* snapshotting; with the opposite order this test panics
    /// with "GC watermark violated".)
    #[test]
    fn gc_never_outruns_a_beginning_transaction() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let tm = std::sync::Arc::new(MvStm::new());
        let b = VBox::new(0u64);
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let writer = {
            let (tm, b, stop) =
                (std::sync::Arc::clone(&tm), b.clone(), std::sync::Arc::clone(&stop));
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    tm.atomic(|tx| tx.write(&b, i));
                }
            })
        };
        for _ in 0..3_000 {
            let v = tm.atomic_ro(|tx| *tx.read(&b));
            let _ = v;
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    /// GC must retain versions needed by long-running readers.
    #[test]
    fn gc_respects_long_running_snapshot() {
        let tm = MvStm::new();
        let a = VBox::new(0u64);
        let b = VBox::new(100u64);
        let mut long_reader = tm.begin();
        let seen_b = *long_reader.read(&b);
        // Many commits to `a` try to trim; `b`'s old version must survive
        // for the registered long reader.
        for i in 0..200u64 {
            tm.atomic(|tx| {
                tx.write(&a, i);
                tx.write(&b, 200 + i);
            });
        }
        assert_eq!(*long_reader.read(&b), seen_b, "snapshot stability");
        assert!(long_reader.try_commit().is_ok(), "read-only long txn commits");
        assert_eq!(*b.read_committed(), 399);
    }
}
