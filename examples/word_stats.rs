//! Parallel analytics inside a transaction: word statistics over a shared
//! document store, while editor threads keep mutating the documents.
//!
//! The analytics transaction forks one transactional future per document
//! shard; opacity guarantees the statistics describe one consistent
//! snapshot of the store even though editors commit concurrently, and
//! strong ordering makes the parallel scan equivalent to a sequential one.
//!
//! Run with: `cargo run --release -p rtf-integration --example word_stats`

use rtf::{Rtf, VBox};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn main() {
    let tm = Rtf::builder().workers(4).build();

    // The document store: one box per document.
    let docs: Arc<Vec<VBox<String>>> = Arc::new(
        (0..64)
            .map(|i| VBox::new(format!("document {i} starts with exactly seven words here")))
            .collect(),
    );

    // Editors append words concurrently.
    let stop = Arc::new(AtomicBool::new(false));
    let editors: Vec<_> = (0..2)
        .map(|e| {
            let tm = tm.clone();
            let docs = Arc::clone(&docs);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = e;
                while !stop.load(Ordering::Relaxed) {
                    let d = docs[i % docs.len()].clone();
                    tm.atomic(move |tx| {
                        let cur = tx.read(&d);
                        tx.write(&d, format!("{cur} edit"));
                    });
                    i += 7;
                }
            })
        })
        .collect();

    // Run several consistent analytics passes while the editors churn.
    for pass in 0..5 {
        let docs2 = Arc::clone(&docs);
        let (words, longest) = tm.atomic_ro(move |tx| {
            let shards = 4usize;
            let per = docs2.len() / shards;
            let mut handles = Vec::new();
            for s in 1..shards {
                let docs3 = Arc::clone(&docs2);
                handles.push(tx.submit(move |tx| {
                    let mut words = 0usize;
                    let mut longest = 0usize;
                    for d in &docs3[s * per..(s + 1) * per] {
                        let text = tx.read(d);
                        words += text.split_whitespace().count();
                        longest = longest
                            .max(text.split_whitespace().map(|w| w.len()).max().unwrap_or(0));
                    }
                    (words, longest)
                }));
            }
            let mut words = 0usize;
            let mut longest = 0usize;
            for d in &docs2[..per] {
                let text = tx.read(d);
                words += text.split_whitespace().count();
                longest = longest.max(text.split_whitespace().map(|w| w.len()).max().unwrap_or(0));
            }
            for h in &handles {
                let (w, l) = *tx.eval(h);
                words += w;
                longest = longest.max(l);
            }
            (words, longest)
        });
        // Every document contributes  7 base words + its edits: the count is
        // a multiple-of-1 sanity property; the key assertion is snapshot
        // consistency, which would otherwise make counts tear.
        println!("pass {pass}: {words} words, longest word {longest} chars");
        assert!(words >= 64 * 7);
        assert!(longest >= "document".len());
    }

    stop.store(true, Ordering::Relaxed);
    for e in editors {
        e.join().unwrap();
    }
    let stats = tm.stats();
    println!(
        "done. commits: {} (ro: {}), ro validation skips: {}",
        stats.commits(),
        stats.top_ro_commits,
        stats.ro_validation_skips
    );
}
