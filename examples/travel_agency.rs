//! The Vacation travel agency with future-parallelized long transactions
//! (the paper's §V adaptation of STAMP Vacation).
//!
//! Loads the agency tables, runs a mixed workload from several client
//! threads — reservations scan a batch of resources before booking, and
//! that scan runs across transactional futures — then audits the books.
//!
//! Run with: `cargo run --release -p rtf-integration --example travel_agency`

use rtf::Rtf;
use rtf_vacation::{Client, VacationConfig, VacationOp};
use std::sync::Arc;

fn main() {
    let tm = Rtf::builder().workers(6).build();
    let cfg = VacationConfig {
        relations: 1024,
        queries_per_tx: 48,
        query_range_pct: 90,
        user_pct: 80,
        audit_pct: 10,
        seed: 42,
    };
    println!("loading tables ({} rows per relation)...", cfg.relations);
    let workload = cfg.build(&tm, 300);
    let manager = workload.manager.clone();

    // 3 client threads, each parallelizing long transactions with 3
    // transactional futures (a `3*4` allocation in the paper's notation).
    let client = Arc::new(Client::new(tm.clone(), manager.clone(), 3));
    let ops = Arc::new(workload.ops);
    let t0 = std::time::Instant::now();
    std::thread::scope(|s| {
        for c in 0..3 {
            let client = Arc::clone(&client);
            let ops = Arc::clone(&ops);
            s.spawn(move || {
                for op in ops.iter().skip(c).step_by(3) {
                    client.execute(op);
                }
            });
        }
    });
    let elapsed = t0.elapsed();

    // Verify the books: units reserved across tables must equal the
    // reservations customers hold.
    let consistent = tm.atomic(|tx| manager.check_consistency(tx));
    assert!(consistent, "reservation accounting must balance");

    // One last analytics run: travels under 600 in total.
    let affordable = client.execute(&VacationOp::PriceRangeQuery {
        price_lo: 0,
        price_hi: 600,
        relations: cfg.relations,
    });

    let stats = tm.stats();
    println!("executed {} ops in {:.2?}", ops.len(), elapsed);
    println!("affordable travel checksum: {affordable}");
    println!(
        "commits: {} (ro: {}), futures: {}, sub-commits: {}, partial rollbacks: {}, \
         top-level aborts: {}",
        stats.commits(),
        stats.top_ro_commits,
        stats.futures_submitted,
        stats.sub_commits,
        stats.sub_validation_aborts,
        stats.top_aborts(),
    );
    println!("books consistent ✓");
}
