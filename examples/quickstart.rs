//! Quickstart: transactional futures in 60 lines.
//!
//! A tiny payment flow: the fee computation runs in a transactional future
//! in parallel with the rest of the transaction, yet the result is exactly
//! what a sequential execution would produce (strong ordering semantics).
//!
//! Run with: `cargo run -p rtf-integration --example quickstart`

use rtf::{Rtf, VBox};

fn main() {
    // The runtime: a worker pool executes transactional futures.
    let tm = Rtf::builder().workers(4).build();

    // Shared state lives in versioned boxes.
    let checking = VBox::new(1_000i64);
    let savings = VBox::new(250i64);
    let fees_collected = VBox::new(0i64);

    // Transfer with a parallel fee computation.
    let transferred = tm.atomic(|tx| {
        // Submit: the closure runs as a sub-transaction on the pool. It is
        // serialized HERE, at the submission point — whatever it reads is
        // consistent with this transaction's snapshot and earlier writes.
        let fee = tx.submit({
            let checking = checking.clone();
            move |tx| {
                // Pretend this is expensive: 1% fee, minimum 5.
                let balance = *tx.read(&checking);
                (balance / 100).max(5)
            }
        });

        // Meanwhile, the continuation does the bookkeeping.
        let amount = 300i64;
        let c = *tx.read(&checking);
        let s = *tx.read(&savings);

        // Evaluate the future (blocks until its sub-transaction commits).
        let fee = *tx.eval(&fee);

        tx.write(&checking, c - amount - fee);
        tx.write(&savings, s + amount);
        let collected = *tx.read(&fees_collected);
        tx.write(&fees_collected, collected + fee);
        amount
    });

    println!("transferred {transferred}");
    println!("checking:  {}", checking.read_committed());
    println!("savings:   {}", savings.read_committed());
    println!("fees:      {}", fees_collected.read_committed());

    assert_eq!(*checking.read_committed(), 1_000 - 300 - 10);
    assert_eq!(*savings.read_committed(), 550);
    assert_eq!(*fees_collected.read_committed(), 10);

    let stats = tm.stats();
    println!(
        "commits: {}, futures submitted: {}, sub-commits: {}",
        stats.commits(),
        stats.futures_submitted,
        stats.sub_commits
    );
}
