//! Futures as a cross-transaction communication channel (paper Fig 2).
//!
//! Transaction T1 (producer thread) submits a transactional future and
//! stores its handle; transaction T2 (consumer thread) picks the handle up
//! and evaluates it — possibly long after T1 committed. Strong ordering
//! makes this sound: the future was serialized at its submission point
//! inside T1, so its value is well-defined no matter where it is evaluated.
//!
//! Run with: `cargo run -p rtf-integration --example pipeline`

use parking_lot::Mutex;
use rtf::{Rtf, TxFuture, VBox};
use std::sync::Arc;

fn main() {
    let tm = Rtf::builder().workers(2).build();
    let inventory = VBox::new(120u64);

    // A mailbox of future handles passed between threads (any channel
    // works; the handles are Send + Clone).
    let mailbox: Arc<Mutex<Vec<TxFuture<u64>>>> = Arc::new(Mutex::new(Vec::new()));

    // Producer: T1 reserves stock and publishes the audit computation as a
    // future.
    let producer = {
        let tm = tm.clone();
        let inventory = inventory.clone();
        let mailbox = Arc::clone(&mailbox);
        std::thread::spawn(move || {
            for batch in 1..=5u64 {
                let mb = Arc::clone(&mailbox);
                let inv = inventory.clone();
                tm.atomic(move |tx| {
                    let have = *tx.read(&inv);
                    tx.write(&inv, have - 10);
                    // The audit future: serialized right here, after the
                    // decrement above — it will observe `have - 10`.
                    let audit = tx.submit({
                        let inv = inv.clone();
                        move |tx| *tx.read(&inv) * 1000 + batch
                    });
                    let _ = tx.eval(&audit); // ensure resolved before commit
                    mb.lock().push(audit);
                });
            }
        })
    };
    producer.join().unwrap();

    // Consumer: T2 evaluates the futures from a different transaction.
    let audits = tm.atomic(|tx| {
        let handles = mailbox.lock().clone();
        handles.iter().map(|h| *tx.eval(h)).collect::<Vec<u64>>()
    });

    println!("audit trail: {audits:?}");
    // Each audit saw the inventory right after its own batch's decrement:
    // 110, 100, 90, 80, 70 — tagged with the batch number.
    assert_eq!(audits, vec![110_001, 100_002, 90_003, 80_004, 70_005]);
    assert_eq!(*inventory.read_committed(), 70);
    println!("final inventory: {}", inventory.read_committed());
}
