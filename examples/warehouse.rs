//! TPC-C on transactional futures: the order pipeline of a wholesale
//! supplier, with long transactions (NewOrder line processing, Delivery's
//! per-district loop, the warehouse audit) parallelized across futures.
//!
//! Run with: `cargo run --release -p rtf-integration --example warehouse`

use rtf::Rtf;
use rtf_tpcc::workload::run_op;
use rtf_tpcc::{TpccConfig, TpccExecutor, TpccScale};
use std::sync::Arc;

fn main() {
    let tm = Rtf::builder().workers(6).build();
    let cfg = TpccConfig {
        scale: TpccScale { warehouses: 2, customers_per_district: 60, items: 512, seed: 7 },
        ..TpccConfig::default()
    };
    println!(
        "loading {} warehouses × 10 districts × {} customers, {} items...",
        cfg.scale.warehouses, cfg.scale.customers_per_district, cfg.scale.items
    );
    let w = cfg.build(&tm, 400);
    let ex = Arc::new(TpccExecutor::new(tm.clone(), w.db.clone(), 3));

    let t0 = std::time::Instant::now();
    std::thread::scope(|s| {
        for c in 0..2 {
            let ex = Arc::clone(&ex);
            let ops = &w.ops;
            s.spawn(move || {
                for op in ops.iter().skip(c).step_by(2) {
                    run_op(&ex, op);
                }
            });
        }
    });
    let elapsed = t0.elapsed();

    // TPC-C consistency conditions must hold afterwards.
    let (ytd_ok, oid_ok) =
        tm.atomic(|tx| (w.db.check_ytd_consistency(tx), w.db.check_order_id_consistency(tx)));
    assert!(ytd_ok, "W_YTD == sum(D_YTD) must hold");
    assert!(oid_ok, "order ids must be dense per district");

    // The paper's long analytics transaction, in parallel.
    let audit0 = ex.warehouse_audit(0);
    let audit1 = ex.warehouse_audit(1);

    let stats = tm.stats();
    println!("executed {} ops in {:.2?}", w.ops.len(), elapsed);
    println!("warehouse 0 money raised: {} cents", audit0);
    println!("warehouse 1 money raised: {} cents", audit1);
    println!(
        "commits: {} (ro: {}), futures: {}, sub-commits: {}, partial rollbacks: {}, \
         top-level aborts: {}",
        stats.commits(),
        stats.top_ro_commits,
        stats.futures_submitted,
        stats.sub_commits,
        stats.sub_validation_aborts,
        stats.top_aborts(),
    );
    println!("consistency checks ✓");
}
