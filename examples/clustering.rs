//! KMeans clustering with transactional futures: multiple worker threads
//! process point chunks as transactions, each parallelizing its assignment
//! loop across futures — the same pattern the paper uses for long
//! transactions, on a numeric workload.
//!
//! Run with: `cargo run --release -p rtf-integration --example clustering`

use rtf::Rtf;
use rtf_kmeans::{KMeans, Points};

fn main() {
    let tm = Rtf::builder().workers(4).build();
    let points = Points::synthetic(6_000, 8, 5, 7);
    println!("clustering {} points (8-d, 5 blobs)...", points.len());

    let km = KMeans::new(points, 5);
    let t0 = std::time::Instant::now();
    let (iters, moved) = km.run(&tm, 2, 500, 3, 60, 1e-4);
    let elapsed = t0.elapsed();

    println!("converged after {iters} iterations in {elapsed:.2?} (last movement² {moved:.2e})");
    let centroids = km.centroids();
    for c in 0..5 {
        let coord: Vec<String> =
            centroids[c * 8..c * 8 + 3].iter().map(|v| format!("{v:7.1}")).collect();
        println!("cluster {c}: [{} ...]", coord.join(", "));
    }

    let stats = tm.stats();
    println!(
        "commits: {}, futures: {}, top-level aborts: {}, partial rollbacks: {}",
        stats.commits(),
        stats.futures_submitted,
        stats.top_aborts(),
        stats.sub_validation_aborts,
    );
    assert!(iters < 60, "must converge");
}
