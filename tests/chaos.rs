//! Chaos and panic-containment integration tests.
//!
//! The paper's protocol is a web of blocking dependencies (waitTurn,
//! sub-commit propagation, future evaluation); these tests check that a
//! dead participant — a panicking future, an injected fault — never turns
//! into a hang or a leak:
//!
//! * a panic inside a future surfaces as [`TxError::FuturePanicked`] while
//!   sibling waiters (including one blocked in waitTurn behind the dead
//!   future) are released;
//! * after the unwind, no tentative entry is left on any box, committed
//!   state is untouched, and later transactions (and the version GC) run
//!   unimpeded;
//! * under a seeded fault schedule (requires the `fault-inject` feature;
//!   these tests skip themselves without it) counters stay exact and every
//!   injected panic is contained.
//!
//! The fault-injection registry is process-global, so every test here
//! serializes on one lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use rtf::{CommitLog, LiveConfig, ObsConfig, ReplayArtifact, Rtf, TxError, TxObs, VBox};
use rtf_txfault::{FaultPlan, SiteRule};
use rtf_txobs::Json;

/// Serializes tests: installed fault plans are process-global.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` on a fresh thread and fails the test if it does not finish
/// within `secs` — a hang detector for paths that used to deadlock.
fn bounded<R: Send + 'static>(secs: u64, f: impl FnOnce() -> R + Send + 'static) -> R {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(Duration::from_secs(secs))
        .expect("hung: the runtime failed to release a waiter")
}

#[test]
fn future_panic_releases_sibling_blocked_in_wait_turn() {
    let _g = lock();
    let (r, committed) = bounded(30, || {
        let tm = Rtf::builder().workers(4).build();
        let x = VBox::new(0u64);
        let r = tm.run({
            let x = x.clone();
            move |tx| {
                // Earlier sibling: dies without committing. The later
                // sibling's sub-commit must waitTurn behind it and can only
                // be released by the poison propagating through the tree.
                let dead = tx.submit(|_tx| -> u64 { panic!("future exploded") });
                let alive = tx.submit({
                    let x = x.clone();
                    move |tx| {
                        let v = *tx.read(&x);
                        tx.write(&x, v + 1);
                        v
                    }
                });
                let _ = tx.eval(&alive);
                let _ = tx.eval(&dead);
            }
        });
        (r, *x.read_committed())
    });
    match r {
        Err(TxError::FuturePanicked { message }) => {
            assert!(message.contains("future exploded"), "payload lost: {message:?}")
        }
        other => panic!("expected FuturePanicked, got {other:?}"),
    }
    assert_eq!(committed, 0, "a torn-down tree must not publish writes");
}

#[test]
fn future_panic_leaves_no_tentative_entries_and_no_owned_orecs() {
    let _g = lock();
    let tm = Rtf::builder().workers(2).build();
    let x = VBox::new(7u64);
    let y = VBox::new(9u64);
    let r: Result<(), TxError> = tm.run({
        let (x, y) = (x.clone(), y.clone());
        move |tx| {
            let f = tx.submit({
                let x = x.clone();
                move |tx| {
                    // Write, then die: the tentative entry must be scrubbed
                    // during teardown, not left to wedge later writers.
                    let v = *tx.read(&x);
                    tx.write(&x, v + 100);
                    panic!("die after write");
                }
            });
            let v = *tx.read(&y);
            tx.write(&y, v + 1);
            let _: Arc<u64> = tx.eval(&f);
        }
    });
    assert!(matches!(r, Err(TxError::FuturePanicked { .. })), "got {r:?}");
    assert!(x.cell().tentative_is_empty(), "tentative entry leaked on x");
    assert!(y.cell().tentative_is_empty(), "tentative entry leaked on y");
    assert_eq!(*x.read_committed(), 7);
    assert_eq!(*y.read_committed(), 9);
    // No orec left owned: a fresh writer of the same boxes commits promptly
    // (an orphaned ownership would spin this forever).
    bounded(30, move || {
        tm.atomic(|tx| {
            let v = *tx.read(&x);
            tx.write(&x, v + 1);
            let w = *tx.read(&y);
            tx.write(&y, w + 1);
        });
        assert_eq!(*x.read_committed(), 8);
        assert_eq!(*y.read_committed(), 10);
    });
}

#[test]
fn version_gc_advances_after_panics() {
    let _g = lock();
    let tm = Rtf::builder().workers(2).build();
    let x = VBox::new(0u64);
    for round in 0..200u64 {
        if round % 10 == 0 {
            let r: Result<(), TxError> = tm.run({
                let x = x.clone();
                move |tx| {
                    let f = tx.submit({
                        let x = x.clone();
                        move |tx| {
                            let v = *tx.read(&x);
                            tx.write(&x, v + 1_000_000);
                            panic!("gc probe panic");
                        }
                    });
                    let _: Arc<u64> = tx.eval(&f);
                }
            });
            assert!(matches!(r, Err(TxError::FuturePanicked { .. })));
        } else {
            tm.atomic({
                let x = x.clone();
                move |tx| {
                    let v = *tx.read(&x);
                    tx.write(&x, v + 1);
                }
            });
        }
    }
    assert_eq!(*x.read_committed(), 180, "exactly the successful increments");
    let s = tm.stats();
    assert!(s.future_panics >= 20, "containment must have been exercised: {s:?}");
    assert!(
        s.versions_gced > 0,
        "version GC watermark must keep advancing despite interleaved teardowns: {s:?}"
    );
}

#[test]
fn injected_future_panic_surfaces_with_site_in_message() {
    let _g = lock();
    if !rtf_txfault::enabled() {
        eprintln!("skipped: requires --features fault-inject");
        return;
    }
    rtf_txfault::install(
        FaultPlan::new(11).rule(SiteRule::at("core.future.body").panic(1_000_000).cap(1)),
    );
    let tm = Rtf::builder().workers(2).build();
    let r: Result<u64, TxError> = tm.run(|tx| {
        let f = tx.submit(|_tx| 5u64);
        *tx.eval(&f)
    });
    rtf_txfault::clear();
    match r {
        Err(TxError::FuturePanicked { message }) => {
            assert!(message.contains("core.future.body"), "site lost: {message:?}")
        }
        other => panic!("expected FuturePanicked, got {other:?}"),
    }
}

#[test]
fn seeded_chaos_preserves_counter_exactness() {
    let _g = lock();
    if !rtf_txfault::enabled() {
        eprintln!("skipped: requires --features fault-inject");
        return;
    }
    rtf_txfault::install(
        FaultPlan::new(0xDECAF)
            .rule(SiteRule::at("mvstm.commit.validate").abort(150_000))
            .rule(SiteRule::at("core.subcommit.validate").abort(100_000))
            .rule(SiteRule::at("core.wait_turn").abort(30_000).spurious(150_000))
            .rule(SiteRule::at("core.future.body").abort(60_000).panic(10_000))
            .rule(SiteRule::at("core.future.commit").abort(40_000).panic(5_000))
            .rule(SiteRule::at("taskpool.task.run").panic(5_000))
            .rule(SiteRule::at("txengine.cell.*").abort(30_000)),
    );
    // The live sampler streams snapshots *while* faults fire: exactness
    // must survive concurrent observation, and the stream's last line must
    // still reconcile with the observer's final totals.
    let stream = std::env::temp_dir().join(format!("rtf-chaos-live-{}.jsonl", std::process::id()));
    let obs = TxObs::new(ObsConfig { spans: false, ..ObsConfig::default() });
    let outcome = bounded(120, {
        let obs = Arc::clone(&obs);
        let stream = stream.clone();
        move || {
            let tm = Arc::new(
                Rtf::builder()
                    .workers(4)
                    .observer(obs)
                    .live_metrics(LiveConfig {
                        interval: Duration::from_millis(20),
                        jsonl: Some(stream),
                        prom_text: None,
                        prom_addr: None,
                    })
                    // Backstop: a wedged wait fails the test as StallAborted
                    // instead of tripping the hang detector with no diagnosis.
                    .stall_warn(Duration::from_millis(200))
                    .stall_abort(Duration::from_secs(10))
                    .build(),
            );
            let counter = VBox::new(0u64);
            let expected = Arc::new(AtomicU64::new(0));
            let panicked = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let tm = Arc::clone(&tm);
                    let counter = counter.clone();
                    let expected = Arc::clone(&expected);
                    let panicked = Arc::clone(&panicked);
                    std::thread::spawn(move || {
                        for _ in 0..250 {
                            let r = tm.run({
                                let counter = counter.clone();
                                move |tx| {
                                    let f = tx.submit({
                                        let counter = counter.clone();
                                        move |tx| {
                                            let v = *tx.read(&counter);
                                            tx.write(&counter, v + 1);
                                            1u64
                                        }
                                    });
                                    let d = *tx.eval(&f);
                                    let v = *tx.read(&counter);
                                    tx.write(&counter, v + d);
                                }
                            });
                            match r {
                                Ok(()) => {
                                    expected.fetch_add(2, Ordering::Relaxed);
                                }
                                Err(TxError::FuturePanicked { .. }) => {
                                    panicked.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(e) => panic!("unexpected chaos failure: {e}"),
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("client thread crashed");
            }
            let outcome = (
                *counter.read_committed(),
                expected.load(Ordering::Relaxed),
                panicked.load(Ordering::Relaxed),
                rtf_txfault::injected_total(),
            );
            drop(tm); // stop the sampler: final reconciling tick, flush batches
            outcome
        }
    });
    rtf_txfault::clear();
    let (committed, expected, panicked, injected) = outcome;
    assert_eq!(committed, expected, "failed runs must contribute nothing");
    assert!(injected > 0, "the schedule must actually have injected faults");
    // With 1000 runs at these panic rates, some future panics are certain;
    // each must have surfaced as a structured error, never a crash or hang.
    assert!(panicked > 0, "injected panics never surfaced as FuturePanicked");
    // The stream the sampler wrote mid-chaos reconciles with the observer.
    let fin = obs.metrics();
    let text = std::fs::read_to_string(&stream).expect("live stream written");
    let last = Json::parse(text.lines().last().unwrap()).unwrap();
    assert_eq!(
        last.path(&["metrics", "counters", "top_commits"]).and_then(Json::as_u64),
        Some(fin.counters.top_commits),
        "live stream's final line diverged from the observer under chaos"
    );
    assert_eq!(
        last.path(&["metrics", "counters", "future_panics"]).and_then(Json::as_u64),
        Some(fin.counters.future_panics),
    );
    std::fs::remove_file(&stream).ok();
}

/// The seeded chaos workload through the ordered lane: the same exactness
/// invariant, plus ticket-lifecycle balance. Any violation fails with the
/// recorded commit order attached as an `rtf-replay-v1` artifact — a
/// replayable schedule, not just a counter mismatch.
#[test]
fn seeded_chaos_through_ordered_lane_dumps_replayable_schedule_on_failure() {
    let _g = lock();
    if !rtf_txfault::enabled() {
        eprintln!("skipped: requires --features fault-inject");
        return;
    }
    const SHARDS: u32 = 2;
    rtf_txfault::install(
        FaultPlan::new(0x0D0E)
            .rule(SiteRule::at("mvstm.commit.validate").abort(150_000))
            .rule(SiteRule::at("mvstm.commit.ticket").abort(80_000).delay(40_000, 50))
            .rule(SiteRule::at("core.wait_turn").abort(30_000).spurious(150_000))
            .rule(SiteRule::at("core.future.body").abort(60_000).panic(10_000))
            .rule(SiteRule::at("txengine.cell.*").abort(30_000)),
    );
    let log = CommitLog::new();
    // On any invariant violation, attach the recorded schedule so the
    // failure is replayable from the test output alone.
    let dump = {
        let log = Arc::clone(&log);
        move |msg: String, stats: &rtf::StatSnapshot| -> ! {
            let artifact = ReplayArtifact::from_run("chaos-test", 0x0D0E, SHARDS, &log, 0, stats);
            panic!("{msg}\nreplayable schedule:\n{}", artifact.to_json().pretty());
        }
    };
    let outcome = bounded(120, {
        let log = Arc::clone(&log);
        move || {
            let tm = Arc::new(
                Rtf::builder()
                    .workers(4)
                    .ordered(SHARDS as usize)
                    .event_sink(log as _)
                    .stall_warn(Duration::from_millis(200))
                    .stall_abort(Duration::from_secs(10))
                    .build(),
            );
            let counter = VBox::new(0u64);
            let expected = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let tm = Arc::clone(&tm);
                    let counter = counter.clone();
                    let expected = Arc::clone(&expected);
                    std::thread::spawn(move || {
                        for _ in 0..150 {
                            let r = tm.run({
                                let counter = counter.clone();
                                move |tx| {
                                    let f = tx.submit({
                                        let counter = counter.clone();
                                        move |tx| {
                                            let v = *tx.read(&counter);
                                            tx.write(&counter, v + 1);
                                            1u64
                                        }
                                    });
                                    let d = *tx.eval(&f);
                                    let v = *tx.read(&counter);
                                    tx.write(&counter, v + d);
                                }
                            });
                            match r {
                                Ok(()) => {
                                    expected.fetch_add(2, Ordering::Relaxed);
                                }
                                Err(TxError::FuturePanicked { .. }) => {}
                                Err(e) => panic!("unexpected chaos failure: {e}"),
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("client thread crashed");
            }
            (*counter.read_committed(), expected.load(Ordering::Relaxed), tm.stats())
        }
    });
    rtf_txfault::clear();
    let (committed, expected, stats) = outcome;
    if committed != expected {
        dump(
            format!("ordered chaos lost exactness: committed {committed} != expected {expected}"),
            &stats,
        );
    }
    if stats.ordered_commits + stats.tickets_abandoned != stats.tickets_issued {
        dump(
            format!(
                "ticket lifecycle leak: issued {} != commits {} + abandoned {}",
                stats.tickets_issued, stats.ordered_commits, stats.tickets_abandoned
            ),
            &stats,
        );
    }
    assert_eq!(
        log.len() as u64,
        stats.ordered_commits,
        "commit log drifted from the ordered_commits counter"
    );
    assert_eq!(stats.tickets_issued, 600, "every run draws exactly one ticket");
}
