//! Live-telemetry integration tests: the streaming snapshot pipeline must
//! tell the truth while the workload is still running.
//!
//! * snapshots cut mid-flight are mutually consistent — successive
//!   [`SnapshotDiff`]s are non-negative and telescope exactly to the final
//!   on-drop totals (the property the ISSUE's acceptance criteria name);
//! * [`rtf::RtfBuilder::live_metrics`] streams `rtf-metrics-stream-v1`
//!   lines whose last line reconciles with the observer's final export;
//! * a seeded ordered-lane stall surfaces as a live `ticket_wait` edge in
//!   the wait graph ("who waits on whom") while the thread is blocked.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rtf::{LiveConfig, MetricsSnapshot, ObsConfig, Rtf, TxObs, VBox};
use rtf_txobs::{Json, StallKind, STREAM_SCHEMA};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rtf-live-it-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// fig5-style contention: every transaction reads a random slot and a hot
/// slot, writing both — plenty of validation aborts and retries.
fn contended_workload(tm: &Rtf, clients: usize, ops: usize) {
    let slots: Arc<Vec<VBox<u64>>> = Arc::new((0..8).map(|_| VBox::new(0)).collect());
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let tm = tm.clone();
            let slots = Arc::clone(&slots);
            std::thread::spawn(move || {
                for i in 0..ops {
                    let slots = Arc::clone(&slots);
                    let a = (c * 7 + i * 3) % slots.len();
                    tm.atomic(move |tx| {
                        let f = tx.submit({
                            let slots = Arc::clone(&slots);
                            move |tx| *tx.read(&slots[a])
                        });
                        let v = *tx.eval(&f);
                        tx.write(&slots[a], v + 1);
                        let hot = *tx.read(&slots[0]);
                        tx.write(&slots[0], hot + 1);
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

/// Counter list of a snapshot's JSON export, in schema order — lets the
/// tests quantify over *every* exported counter without naming them.
fn counters_of(snap: &MetricsSnapshot) -> Vec<(String, u64)> {
    snap.to_json()
        .get("counters")
        .and_then(Json::as_obj)
        .expect("counters object")
        .iter()
        .map(|(k, v)| (k.clone(), v.as_u64().expect("counter is a u64")))
        .collect()
}

#[test]
fn snapshot_diffs_are_non_negative_and_sum_to_on_drop_totals() {
    const CLIENTS: usize = 4;
    const OPS: usize = 150;
    let obs = TxObs::new(ObsConfig { spans: false, ..ObsConfig::default() });
    let mut snapshots: Vec<MetricsSnapshot> = vec![MetricsSnapshot::default()];
    {
        let tm = Rtf::builder().workers(2).observer(Arc::clone(&obs)).build();
        let done = Arc::new(AtomicBool::new(false));
        let sampler = {
            let obs = Arc::clone(&obs);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut snaps = Vec::new();
                while !done.load(Ordering::Relaxed) {
                    snaps.push(obs.metrics());
                    std::thread::sleep(Duration::from_millis(2));
                }
                snaps
            })
        };
        contended_workload(&tm, CLIENTS, OPS);
        done.store(true, Ordering::Relaxed);
        snapshots.extend(sampler.join().unwrap());
    } // drop the TM: flushes every per-thread batch into the observer
    let fin = obs.metrics();
    snapshots.push(fin.clone());

    assert!(snapshots.len() >= 5, "sampler too slow to say anything: {}", snapshots.len());
    let final_counters = counters_of(&fin);
    assert_eq!(
        fin.counters.top_commits,
        (CLIENTS * OPS) as u64,
        "workload accounting broke: {:?}",
        fin.counters
    );

    // Property 1 — non-negativity: every exported counter and histogram is
    // monotone across the live sequence (snapshots cut while writers run).
    for w in snapshots.windows(2) {
        let (prev, next) = (&w[0], &w[1]);
        for ((name, a), (name2, b)) in counters_of(prev).iter().zip(counters_of(next).iter()) {
            assert_eq!(name, name2, "counter order must be stable across snapshots");
            assert!(b >= a, "counter {name} went backwards between live snapshots: {a} -> {b}");
        }
        for (h, ha, hb) in [
            ("commit", &prev.commit, &next.commit),
            ("wait_turn", &prev.wait_turn, &next.wait_turn),
            ("validation", &prev.validation, &next.validation),
            ("future_lifetime", &prev.future_lifetime, &next.future_lifetime),
        ] {
            assert!(hb.count >= ha.count, "{h} histogram count went backwards");
        }
        assert!(next.spans_recorded >= prev.spans_recorded);
        assert!(next.spans_dropped >= prev.spans_dropped);
    }

    // Property 2 — the diffs telescope exactly: summing every interval's
    // SnapshotDiff reproduces the final on-drop totals, field by field.
    let mut sum_commits = 0u64;
    let mut sum_top = 0u64;
    let mut sum_aborts = 0u64;
    let mut sum_hist = [0u64; 4];
    let mut sum_spans = 0u64;
    for w in snapshots.windows(2) {
        let d = w[1].diff_since(&w[0]);
        sum_commits += d.counters.commits();
        sum_top += d.counters.top_commits;
        sum_aborts += d.counters.top_validation_aborts;
        for (acc, h) in
            sum_hist.iter_mut().zip([&d.commit, &d.wait_turn, &d.validation, &d.future_lifetime])
        {
            *acc += h.count;
        }
        sum_spans += d.spans_recorded;
    }
    assert_eq!(sum_commits, fin.counters.commits());
    assert_eq!(sum_top, fin.counters.top_commits);
    assert_eq!(sum_aborts, fin.counters.top_validation_aborts);
    for (acc, h) in
        sum_hist.iter().zip([&fin.commit, &fin.wait_turn, &fin.validation, &fin.future_lifetime])
    {
        assert_eq!(*acc, h.count, "histogram interval counts must sum to the final count");
    }
    assert_eq!(sum_spans, fin.spans_recorded);
    // Spot-check the generic export too: the last live snapshot can at most
    // equal the on-drop totals (drop flushes the remaining batches).
    let last_live = counters_of(&snapshots[snapshots.len() - 2]);
    for ((name, live), (_, fin)) in last_live.iter().zip(final_counters.iter()) {
        assert!(live <= fin, "{name}: live snapshot overshot the final export");
    }
}

#[test]
fn live_metrics_builder_streams_lines_that_reconcile_with_final_export() {
    let dir = temp_dir("builder");
    let stream = dir.join("stream.jsonl");
    let prom = dir.join("prom.txt");
    let obs = TxObs::new(ObsConfig { spans: false, ..ObsConfig::default() });
    {
        let tm = Rtf::builder()
            .workers(2)
            .observer(Arc::clone(&obs))
            .live_metrics(LiveConfig {
                interval: Duration::from_millis(5),
                jsonl: Some(stream.clone()),
                prom_text: Some(prom.clone()),
                prom_addr: None,
            })
            .build();
        contended_workload(&tm, 3, 80);
        // Outlive a couple of intervals so the stream holds mid-flight
        // samples, not just the start and final ticks.
        std::thread::sleep(Duration::from_millis(15));
    } // drop: stops the exporter (final tick) *before* reading totals
    let fin = obs.metrics();

    let text = std::fs::read_to_string(&stream).unwrap();
    let lines: Vec<Json> = text.lines().map(|l| Json::parse(l).unwrap()).collect();
    assert!(lines.len() >= 3, "expected >=3 snapshots (start, interval, final): {}", lines.len());
    for (i, line) in lines.iter().enumerate() {
        assert_eq!(line.path(&["schema"]).and_then(Json::as_str), Some(STREAM_SCHEMA));
        assert_eq!(line.path(&["seq"]).and_then(Json::as_u64), Some(i as u64), "seq must be dense");
    }
    // The final tick ran after the workload quiesced, so the last line *is*
    // the on-drop state: every counter matches exactly.
    let last = lines.last().unwrap().get("metrics").unwrap();
    for (name, want) in counters_of(&fin) {
        assert_eq!(
            last.path(&["counters", &name]).and_then(Json::as_u64),
            Some(want),
            "counter {name} in the last stream line diverged from the final export"
        );
    }
    assert_eq!(
        last.path(&["histograms_ns", "commit", "count"]).and_then(Json::as_u64),
        Some(fin.commit.count)
    );
    // The Prometheus text file was rewritten by the same final tick.
    let prom_text = std::fs::read_to_string(&prom).unwrap();
    assert!(prom_text.contains(&format!("rtf_top_commits_total {}", fin.counters.top_commits)));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn seeded_ordered_stall_shows_live_ticket_wait_edge() {
    let obs = TxObs::new(ObsConfig { spans: false, ..ObsConfig::default() });
    let tm = Rtf::builder().workers(2).ordered(1).observer(Arc::clone(&obs)).build();
    let b = VBox::new(0u64);

    // Seed the stall: draw the lane's first ticket and sit on it, then
    // commit a transaction holding the *second* ticket — its commit must
    // block in ticket-wait until the first is released.
    let blocker = tm.ticket();
    let waiter = {
        let tm = tm.clone();
        let b = b.clone();
        let ticket = tm.ticket();
        std::thread::spawn(move || {
            tm.run_ticketed(ticket, move |tx| {
                let v = *tx.read(&b);
                tx.write(&b, v + 1);
            })
            .unwrap();
        })
    };

    // The inspector must catch the blocked thread red-handed: a live
    // snapshot taken during the stall carries the ticket_wait edge.
    let deadline = Instant::now() + Duration::from_secs(10);
    let edge = loop {
        let snap = obs.metrics();
        if let Some(e) = snap.waits.iter().find(|e| e.kind == StallKind::TicketWait) {
            break *e;
        }
        assert!(Instant::now() < deadline, "no live ticket_wait edge appeared during the stall");
        std::thread::sleep(Duration::from_millis(1));
    };
    assert_eq!(edge.a, 0, "single-shard lane");
    assert_eq!(edge.b, 1, "the waiter holds the lane's second ticket");
    assert!(edge.describe().contains("ticket_wait lane 0 seq 1"), "got {:?}", edge.describe());

    // Release the lane; the waiter commits; the edge drains.
    drop(blocker);
    waiter.join().unwrap();
    assert_eq!(*b.read_committed(), 1);
    let deadline = Instant::now() + Duration::from_secs(10);
    while !obs.metrics().waits.is_empty() {
        assert!(Instant::now() < deadline, "wait edge leaked after the stall resolved");
        std::thread::sleep(Duration::from_millis(1));
    }
}
