//! Inter-tree conflicts (paper Alg 1, `ownedByAnotherTree`): when a
//! sub-transaction writes a box whose tentative list is held by another
//! active transaction tree, its whole tree aborts and re-executes —
//! eventually in the sequential fallback mode that routes writes through
//! the top-level write-set (DESIGN.md D3).

use rtf::{Rtf, VBox};
use std::sync::Arc;

/// Two trees whose futures hammer the same boxes: inter-tree aborts occur,
/// the fallback engages, and no update is lost.
#[test]
fn conflicting_trees_converge_exactly() {
    let tm = Arc::new(Rtf::builder().workers(2).fallback_threshold(1).build());
    let shared = VBox::new(0u64);
    let threads = 3;
    let per = 150;
    // All trees start together: their first transactions overlap even when
    // the test runs on a loaded machine, so the contention asserted below
    // does not depend on thread-spawn timing.
    let barrier = Arc::new(std::sync::Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let (tm, shared) = (Arc::clone(&tm), shared.clone());
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for _ in 0..per {
                    tm.atomic(|tx| {
                        let s2 = shared.clone();
                        let f = tx.submit(move |tx| {
                            let v = *tx.read(&s2);
                            tx.write(&s2, v + 1);
                            // Keep the tentative entry live long enough for
                            // the sibling trees to collide with it — the
                            // window would otherwise be a few hundred
                            // nanoseconds and the contention this test
                            // asserts on becomes a coin flip.
                            let t = std::time::Instant::now();
                            while t.elapsed() < std::time::Duration::from_micros(20) {
                                std::hint::spin_loop();
                            }
                            0u8
                        });
                        let _ = tx.eval(&f);
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(*shared.read_committed(), (threads * per) as u64);
    let s = tm.stats();
    assert_eq!(s.commits(), (threads * per) as u64);
    // With three trees fighting for one box, inter-tree conflicts are
    // essentially guaranteed at this scale.
    assert!(s.inter_tree_aborts > 0, "expected some ownedByAnotherTree aborts: {s:?}");
    assert!(s.fallback_runs > 0, "fallback mode should have engaged: {s:?}");
}

/// The fallback threshold is honoured: with a huge threshold the fallback
/// never engages, yet the result is still exact (pure optimistic retries).
#[test]
fn high_threshold_avoids_fallback() {
    let tm = Arc::new(Rtf::builder().workers(2).fallback_threshold(u32::MAX).build());
    let shared = VBox::new(0u64);
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let (tm, shared) = (Arc::clone(&tm), shared.clone());
            std::thread::spawn(move || {
                for _ in 0..100 {
                    tm.atomic(|tx| {
                        let s2 = shared.clone();
                        let f = tx.submit(move |tx| {
                            let v = *tx.read(&s2);
                            tx.write(&s2, v + 1);
                            0u8
                        });
                        let _ = tx.eval(&f);
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(*shared.read_committed(), 200);
    assert_eq!(tm.stats().fallback_runs, 0);
}

/// Disjoint write sets never trigger inter-tree conflicts.
#[test]
fn disjoint_trees_never_interfere() {
    let tm = Arc::new(Rtf::builder().workers(2).build());
    let boxes: Arc<Vec<VBox<u64>>> = Arc::new((0..4).map(|_| VBox::new(0u64)).collect());
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let (tm, boxes) = (Arc::clone(&tm), Arc::clone(&boxes));
            std::thread::spawn(move || {
                for _ in 0..100 {
                    let own = boxes[t].clone();
                    tm.atomic(move |tx| {
                        let o2 = own.clone();
                        let f = tx.submit(move |tx| {
                            let v = *tx.read(&o2);
                            tx.write(&o2, v + 1);
                            0u8
                        });
                        let _ = tx.eval(&f);
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    for b in boxes.iter() {
        assert_eq!(*b.read_committed(), 100);
    }
    let s = tm.stats();
    assert_eq!(s.inter_tree_aborts, 0, "{s:?}");
    assert_eq!(s.top_validation_aborts, 0, "{s:?}");
}

/// A tree in fallback mode coexists correctly with parallel-mode trees:
/// the fallback tree's writes go through the top-level write-set and are
/// validated like any top-level commit.
#[test]
fn fallback_and_parallel_trees_mix() {
    let tm = Arc::new(Rtf::builder().workers(2).fallback_threshold(1).build());
    let a = VBox::new(0u64);
    let b = VBox::new(0u64);
    // Thread 1 fights over `a` (will fall back); thread 2 uses futures on
    // disjoint `b` (stays parallel). A third thread also fights over `a`.
    let mk_fighter = |tmr: &Arc<Rtf>, boxr: &VBox<u64>| {
        let (tm, bx) = (Arc::clone(tmr), boxr.clone());
        std::thread::spawn(move || {
            for _ in 0..120 {
                tm.atomic(|tx| {
                    let b2 = bx.clone();
                    let f = tx.submit(move |tx| {
                        let v = *tx.read(&b2);
                        tx.write(&b2, v + 1);
                        0u8
                    });
                    let _ = tx.eval(&f);
                });
            }
        })
    };
    let h1 = mk_fighter(&tm, &a);
    let h2 = mk_fighter(&tm, &a);
    let h3 = mk_fighter(&tm, &b);
    h1.join().unwrap();
    h2.join().unwrap();
    h3.join().unwrap();
    assert_eq!(*a.read_committed(), 240);
    assert_eq!(*b.read_committed(), 120);
}
