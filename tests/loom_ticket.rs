//! Model-check-style tests for the ordered lane's ticket handoff: the
//! predecessor-commit / successor-wait race, hole-skipping over abandoned
//! tickets, helping while parked, and the give-up (`keep = false`) vs
//! concurrent-retire race.
//!
//! Compiled only under `--cfg loom` so the tier-1 `cargo test` run is
//! unaffected:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p rtf-integration --test loom_ticket --release
//! ```
//!
//! The vendored `loom` is an offline shim (randomized stress scheduling over
//! the loom API, not exhaustive DPOR — see `vendor/loom/src/lib.rs` for the
//! fidelity caveats); swapping in the real crate requires no changes here.
//! Each `loom::model` closure is one small, fixed scenario with full-state
//! assertions, exactly the shape real loom wants.

#![cfg(loom)]

use loom::thread;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use rtf_txbase::{TicketDispenser, TicketLane};

/// The handoff race itself: the successor starts waiting before, during or
/// after the predecessor's retire. Whatever the interleaving, the wait must
/// return admitted, observe the predecessor's write, and the lane must end
/// at turn 2.
#[test]
fn predecessor_commit_vs_successor_wait() {
    loom::model(|| {
        let lane = Arc::new(TicketLane::default());
        let s0 = lane.issue();
        let s1 = lane.issue();
        let published = Arc::new(AtomicU64::new(0));

        let predecessor = {
            let lane = Arc::clone(&lane);
            let published = Arc::clone(&published);
            thread::spawn(move || {
                thread::yield_now();
                // "Commit": publish while still holding the turn, then pass
                // it on — the ordering OrderedTicket::complete relies on.
                published.store(7, Ordering::Release);
                lane.retire(s0);
            })
        };
        let successor = {
            let lane = Arc::clone(&lane);
            let published = Arc::clone(&published);
            thread::spawn(move || {
                let admitted = lane.wait_turn(s1, || false, || true);
                assert!(admitted, "successor with a live predecessor must be admitted");
                // Turn implies visibility of everything the predecessor
                // published before retiring.
                assert_eq!(published.load(Ordering::Acquire), 7);
                lane.retire(s1);
            })
        };
        predecessor.join().unwrap();
        successor.join().unwrap();
        assert_eq!(lane.turn(), 2);
    });
}

/// Out-of-order retirement: three holders retire in racing order; the lane
/// must sweep holes and end exactly at turn 3, and a fourth ticket's wait
/// must then be immediate.
#[test]
fn out_of_order_retirement_sweeps_holes() {
    loom::model(|| {
        let lane = Arc::new(TicketLane::default());
        let seqs: Vec<u64> = (0..3).map(|_| lane.issue()).collect();
        let handles: Vec<_> = [seqs[2], seqs[0], seqs[1]]
            .into_iter()
            .map(|s| {
                let lane = Arc::clone(&lane);
                thread::spawn(move || {
                    thread::yield_now();
                    // Abandonment is a retire without a commit: the lane
                    // must treat a hole exactly like a handoff.
                    lane.retire(s);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lane.turn(), 3, "holes not swept");
        let s3 = lane.issue();
        assert!(lane.wait_turn(s3, || false, || true), "post-sweep wait must be immediate");
    });
}

/// Helping while parked: a successor's wait loop must keep invoking its
/// help closure (the runtime drains pool tasks here) while the predecessor
/// dawdles, and still win the turn afterwards.
#[test]
fn waiting_successor_helps_until_admitted() {
    loom::model(|| {
        let lane = Arc::new(TicketLane::default());
        let s0 = lane.issue();
        let s1 = lane.issue();
        let helped = Arc::new(AtomicUsize::new(0));

        let successor = {
            let lane = Arc::clone(&lane);
            let helped = Arc::clone(&helped);
            thread::spawn(move || {
                let admitted = lane.wait_turn(
                    s1,
                    || {
                        helped.fetch_add(1, Ordering::Relaxed);
                        thread::yield_now();
                        true // claim work was found: loop without parking
                    },
                    || true,
                );
                assert!(admitted);
                lane.retire(s1);
            })
        };
        let predecessor = {
            let lane = Arc::clone(&lane);
            thread::spawn(move || {
                for _ in 0..3 {
                    thread::yield_now();
                }
                lane.retire(s0);
            })
        };
        predecessor.join().unwrap();
        successor.join().unwrap();
        assert_eq!(lane.turn(), 2);
        // The help closure may legitimately not run if the predecessor won
        // the race instantly — but the lane must never deadlock either way.
        let _ = helped.load(Ordering::Relaxed);
    });
}

/// The give-up race: a successor abandons its wait (`keep` turns false)
/// while the predecessor concurrently retires. Both orders are legal —
/// admitted or refused — but refusal must still be followed by the
/// abandoning side's own retire (the OrderedTicket::drop contract), so a
/// third ticket can never be wedged.
#[test]
fn give_up_vs_concurrent_retire_never_wedges_the_lane() {
    loom::model(|| {
        let lane = Arc::new(TicketLane::default());
        let s0 = lane.issue();
        let s1 = lane.issue();
        let s2 = lane.issue();

        let flaky = {
            let lane = Arc::clone(&lane);
            thread::spawn(move || {
                let mut patience = 2;
                let admitted = lane.wait_turn(
                    s1,
                    || false,
                    || {
                        patience -= 1;
                        patience > 0
                    },
                );
                // Either outcome is legal; both must retire s1.
                lane.retire(s1);
                admitted
            })
        };
        let predecessor = {
            let lane = Arc::clone(&lane);
            thread::spawn(move || {
                thread::yield_now();
                lane.retire(s0);
            })
        };
        predecessor.join().unwrap();
        let _ = flaky.join().unwrap();
        // The third ticket must always be reachable.
        assert!(lane.wait_turn(s2, || false, || true), "lane wedged after a give-up");
        lane.retire(s2);
        assert_eq!(lane.turn(), 3);
    });
}

/// Concurrent acquires on a sharded dispenser: every `(lane, seq)` pair is
/// unique, and each lane's sequence space is dense.
#[test]
fn concurrent_acquire_is_unique_and_dense() {
    loom::model(|| {
        let d = Arc::new(TicketDispenser::new(2));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let d = Arc::clone(&d);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    for _ in 0..4 {
                        got.push(d.acquire());
                        thread::yield_now();
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<_> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_by_key(|t| (t.lane, t.seq));
        all.dedup();
        assert_eq!(all.len(), 12, "duplicate tickets issued");
        for lane in 0..2u32 {
            let seqs: Vec<u64> = all.iter().filter(|t| t.lane == lane).map(|t| t.seq).collect();
            assert_eq!(seqs, (0..seqs.len() as u64).collect::<Vec<_>>(), "lane {lane} sparse");
        }
        // Drain so the dispenser ends quiescent.
        for t in &all {
            d.lane(t.lane).retire(t.seq);
        }
        assert_eq!(d.lane(0).turn() + d.lane(1).turn(), 12);
    });
}
