//! Opacity across top-level transactions (paper §II): committed
//! transactions are strictly serializable, and no transaction — not even
//! one that will abort — ever observes an inconsistent snapshot.

use rtf::{Rtf, VBox};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Writers keep `a + b == 1000` invariant; readers (plain and with
/// futures) must never observe a violation.
#[test]
fn invariant_never_torn() {
    let tm = Arc::new(Rtf::builder().workers(3).build());
    let a = VBox::new(600i64);
    let b = VBox::new(400i64);
    let stop = Arc::new(AtomicBool::new(false));
    let violations = Arc::new(AtomicU64::new(0));

    let writers: Vec<_> = (0..2)
        .map(|_| {
            let (tm, a, b, stop) = (Arc::clone(&tm), a.clone(), b.clone(), Arc::clone(&stop));
            std::thread::spawn(move || {
                let mut k = 1i64;
                while !stop.load(Ordering::Relaxed) {
                    k = (k % 7) + 1;
                    let delta = k;
                    tm.atomic(|tx| {
                        let av = *tx.read(&a);
                        let bv = *tx.read(&b);
                        tx.write(&a, av - delta);
                        tx.write(&b, bv + delta);
                    });
                }
            })
        })
        .collect();

    let readers: Vec<_> = (0..2)
        .map(|r| {
            let (tm, a, b, violations) =
                (Arc::clone(&tm), a.clone(), b.clone(), Arc::clone(&violations));
            std::thread::spawn(move || {
                for i in 0..200 {
                    let sum = if (r + i) % 2 == 0 {
                        // Plain read-only transaction.
                        tm.atomic_ro(|tx| *tx.read(&a) + *tx.read(&b))
                    } else {
                        // Parallelized read-only transaction: the two reads
                        // happen in different sub-transactions.
                        let (a2, b2) = (a.clone(), b.clone());
                        tm.atomic_ro(move |tx| {
                            let fa = tx.submit({
                                let a3 = a2.clone();
                                move |tx| *tx.read(&a3)
                            });
                            let bv = *tx.read(&b2);
                            *tx.eval(&fa) + bv
                        })
                    };
                    if sum != 1000 {
                        violations.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();

    for r in readers {
        r.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
    assert_eq!(violations.load(Ordering::Relaxed), 0, "opacity violated");
    assert_eq!(*a.read_committed() + *b.read_committed(), 1000);
}

/// Intermediate states of a transaction tree (both the root write-set and
/// committed sub-transaction writes) must be invisible to other top-level
/// transactions until the root commits.
#[test]
fn tree_effects_atomically_visible() {
    let tm = Arc::new(Rtf::builder().workers(2).build());
    let x = VBox::new(0u64);
    let y = VBox::new(0u64);
    let release = Arc::new(AtomicBool::new(false));
    let in_future = Arc::new(AtomicBool::new(false));

    // Writer transaction: the future writes x, commits (sub-commit!), then
    // the tree lingers until released, then writes y and commits.
    let writer = {
        let (tm, x, y) = (Arc::clone(&tm), x.clone(), y.clone());
        let (release, in_future) = (Arc::clone(&release), Arc::clone(&in_future));
        std::thread::spawn(move || {
            tm.atomic(move |tx| {
                let xf = tx.submit({
                    let x = x.clone();
                    move |tx| {
                        tx.write(&x, 7);
                        7u64
                    }
                });
                let _ = tx.eval(&xf); // future sub-committed: x=7 inside the tree
                in_future.store(true, Ordering::Release);
                while !release.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                let yv = *tx.read(&y);
                tx.write(&y, yv + 1);
            });
        })
    };

    // Observer: after the future sub-committed, other transactions must
    // still see the old value of x.
    while !in_future.load(Ordering::Acquire) {
        std::hint::spin_loop();
    }
    let seen = tm.atomic_ro(|tx| *tx.read(&x));
    assert_eq!(seen, 0, "sub-commit must not escape the tree");
    release.store(true, Ordering::Release);
    writer.join().unwrap();
    assert_eq!(*x.read_committed(), 7);
    assert_eq!(*y.read_committed(), 1);
}

/// First-committer-wins: of two conflicting read-modify-writes, one must
/// abort and retry; no update may be lost (tested at scale).
#[test]
fn no_lost_updates_under_heavy_conflict() {
    let tm = Arc::new(Rtf::builder().workers(2).build());
    let hot = VBox::new(0u64);
    let threads = 4;
    let per = 300;
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let (tm, hot) = (Arc::clone(&tm), hot.clone());
            std::thread::spawn(move || {
                for _ in 0..per {
                    tm.atomic(|tx| {
                        let v = *tx.read(&hot);
                        tx.write(&hot, v + 1);
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(*hot.read_committed(), (threads * per) as u64);
    let s = tm.stats();
    assert_eq!(s.top_commits, (threads * per) as u64);
}

/// Read-only top-level transactions never validate and never abort, even
/// under constant write traffic (multi-version snapshots).
#[test]
fn read_only_never_aborts() {
    let tm = Arc::new(Rtf::builder().workers(2).build());
    let boxes: Arc<Vec<VBox<u64>>> = Arc::new((0..32).map(|_| VBox::new(0u64)).collect());
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let (tm, boxes, stop) = (Arc::clone(&tm), Arc::clone(&boxes), Arc::clone(&stop));
        std::thread::spawn(move || {
            let mut i = 0;
            while !stop.load(Ordering::Relaxed) {
                i += 1;
                let bx = boxes[i % boxes.len()].clone();
                tm.atomic(move |tx| {
                    let v = *tx.read(&bx);
                    tx.write(&bx, v + 1);
                });
            }
        })
    };
    for _ in 0..300 {
        tm.atomic_ro(|tx| {
            let mut total = 0u64;
            for b in boxes.iter() {
                total += *tx.read(b);
            }
            total
        });
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
    let s = tm.stats();
    assert_eq!(s.top_ro_commits, 300);
    assert_eq!(s.top_validation_aborts, 0, "read-only txns must not conflict: {s:?}");
}
