//! Record/replay integration tests for the ordered-commit lane: the same
//! (workload, seed) pair must produce a bit-identical `rtf-replay-v1`
//! artifact — per-lane commit order, final-state hash, lifecycle counters —
//! across repeated runs and across *different* thread counts, and the
//! ordered lane must never change the result of a commutative workload
//! relative to unordered execution.

use std::sync::Arc;

use rtf::{state_hash, CommitLog, ReplayArtifact, Rtf, VBox};

/// Order-sensitive fold: the final value encodes the exact commit order.
fn mix(acc: u64, x: u64) -> u64 {
    (acc ^ x).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17)
}

/// Deterministic per-ticket payload (SplitMix64 over the seed and index).
fn payload(seed: u64, k: u64) -> u64 {
    let mut z = seed.wrapping_add(k.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One recorded run of the order-dependent workload: `tickets` tickets
/// drawn up front (fixing the commit order), executed by `threads` threads
/// round-robin, each folding its payload into its lane's hash chain and
/// bumping a contended shared total.
fn record_run(seed: u64, shards: usize, tickets: usize, threads: usize) -> ReplayArtifact {
    let log = CommitLog::new();
    let tm = Rtf::builder().workers(2).ordered(shards).event_sink(Arc::clone(&log) as _).build();
    let chains: Arc<Vec<VBox<u64>>> = Arc::new((0..shards).map(|_| VBox::new(0u64)).collect());
    let total = VBox::new(0u64);

    let mut per_thread: Vec<Vec<(rtf::OrderedTicket, u64)>> =
        (0..threads).map(|_| Vec::new()).collect();
    for k in 0..tickets {
        // Round-robin with each thread's slice in increasing ticket order:
        // the globally oldest unretired ticket is always at the head of
        // some thread's queue, so turn waits cannot deadlock.
        per_thread[k % threads].push((tm.ticket(), payload(seed, k as u64)));
    }
    let handles: Vec<_> = per_thread
        .into_iter()
        .map(|slice| {
            let tm = tm.clone();
            let chains = Arc::clone(&chains);
            let total = total.clone();
            std::thread::spawn(move || {
                for (ticket, p) in slice {
                    let lane = ticket.ticket().lane as usize;
                    let chains = Arc::clone(&chains);
                    let total = total.clone();
                    tm.run_ticketed(ticket, move |tx| {
                        let acc = *tx.read(&chains[lane]);
                        tx.write(&chains[lane], mix(acc, p));
                        let t = *tx.read(&total);
                        tx.write(&total, t + p % 7);
                    })
                    .expect("ticketed transaction failed");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("submitter thread crashed");
    }
    let hash =
        state_hash(chains.iter().map(|c| *c.read_committed()).chain([*total.read_committed()]));
    ReplayArtifact::from_run("replay-test", seed, shards as u32, &log, hash, &tm.stats())
}

/// The tentpole claim: same seed ⇒ identical artifact, across ≥3 runs
/// *and* across different thread counts (commit order is data, not
/// scheduling).
#[test]
fn same_seed_is_bit_identical_across_runs_and_thread_counts() {
    for (seed, shards) in [(1u64, 1usize), (7, 2), (0xC0FFEE, 1)] {
        let baseline = record_run(seed, shards, 120, 3);
        assert_eq!(baseline.counters.ordered_commits, 120);
        assert_eq!(baseline.counters.tickets_abandoned, 0);
        for threads in [3, 1, 6] {
            let run = record_run(seed, shards, 120, threads);
            assert_eq!(baseline.diff(&run), None, "seed {seed:#x} diverged at {threads} threads");
        }
    }
}

/// The artifact survives its own serialization: parse(to_json) of a *live*
/// run round-trips exactly, so frozen artifacts stay comparable.
#[test]
fn live_artifact_round_trips_through_json() {
    let a = record_run(42, 2, 60, 2);
    let b = ReplayArtifact::parse(&a.to_json().pretty()).expect("round trip");
    assert_eq!(a, b);
    assert_eq!(a.diff(&b), None);
}

/// Different seeds must *not* collide: the state hash separates runs, so a
/// passing diff is evidence, not vacuity.
#[test]
fn different_seeds_diverge() {
    let a = record_run(1, 1, 60, 2);
    let b = record_run(2, 1, 60, 2);
    let d = a.diff(&b).expect("different seeds must diverge");
    assert!(d.contains("seed"), "first divergence should be the seed: {d}");
    assert_ne!(a.state_hash, b.state_hash, "order-dependent hash collided across seeds");
}

/// Cross-mode equivalence: on a commutative workload (pure additions) the
/// ordered lane changes schedules, never results — ordered and unordered
/// runs reach the same final state.
#[test]
fn ordered_and_unordered_agree_on_commutative_workload() {
    let run = |ordered: bool| -> u64 {
        const SLOTS: usize = 4;
        let mut builder = Rtf::builder().workers(2);
        if ordered {
            builder = builder.ordered(2);
        }
        let tm = builder.build();
        let slots: Arc<Vec<VBox<u64>>> = Arc::new((0..SLOTS).map(|_| VBox::new(0u64)).collect());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let tm = tm.clone();
                let slots = Arc::clone(&slots);
                std::thread::spawn(move || {
                    for i in 0..80u64 {
                        let r = payload(99, t * 80 + i);
                        let a = (r % SLOTS as u64) as usize;
                        let da = (r >> 32) % 5 + 1;
                        let slots = Arc::clone(&slots);
                        tm.run(move |tx| {
                            let v = *tx.read(&slots[a]);
                            tx.write(&slots[a], v + da);
                        })
                        .expect("commutative transaction failed");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("thread crashed");
        }
        state_hash(slots.iter().map(|s| *s.read_committed()))
    };
    assert_eq!(run(true), run(false), "ordering changed the result of commutative work");
}
