//! Contrasts the paper's strong ordering semantics (§II) with the
//! unordered parallel-nesting mode (ablation A4, cf. paper §VI / JVSTM):
//! strong ordering pins a future's serialization to its submission point;
//! parallel nesting serializes sub-transactions in commit order, so a
//! future can legally observe its own continuation's writes — exactly the
//! ambiguity (paper Fig 1/Fig 2 discussion) strong ordering exists to rule
//! out.

use rtf::{Rtf, TreeSemantics, VBox};
use std::sync::Arc;

/// A slowed-down future reads a box its continuation writes.
/// Strong ordering: the future serializes first and MUST read the old
/// value. Parallel nesting: the continuation commits first (nothing makes
/// it wait), the future's validation detects the committed write and
/// re-executes, observing the continuation's value.
fn slow_future_reads_conts_write(semantics: TreeSemantics) -> u64 {
    let tm = Rtf::builder().workers(2).semantics(semantics).build();
    let x = VBox::new(0u64);
    tm.atomic(|tx| {
        let x_fut = x.clone();
        let x_cont = x.clone();
        let h = tx.fork(
            move |tx| {
                std::thread::sleep(std::time::Duration::from_millis(20));
                *tx.read(&x_fut)
            },
            move |tx, f| {
                tx.write(&x_cont, 5);
                f.clone()
            },
        );
        *tx.eval(&h)
    })
}

#[test]
fn strong_ordering_pins_future_before_continuation() {
    assert_eq!(
        slow_future_reads_conts_write(TreeSemantics::StrongOrdering),
        0,
        "under strong ordering the future must not see its continuation's write"
    );
}

#[test]
fn parallel_nesting_serializes_in_commit_order() {
    assert_eq!(
        slow_future_reads_conts_write(TreeSemantics::ParallelNesting),
        5,
        "under parallel nesting the late-committing future serializes after \
         the continuation and observes its write"
    );
}

/// Parallel nesting remains *serializable*: concurrent read-modify-writes
/// inside one tree never lose updates (validation still runs).
#[test]
fn nesting_is_still_serializable_within_a_tree() {
    let tm = Rtf::builder().workers(3).semantics(TreeSemantics::ParallelNesting).build();
    let counter = VBox::new(0u64);
    let out = tm.atomic(|tx| {
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = counter.clone();
            handles.push(tx.submit(move |tx| {
                for _ in 0..25 {
                    let v = *tx.read(&c);
                    tx.write(&c, v + 1);
                }
            }));
        }
        for h in &handles {
            let _ = tx.eval(h);
        }
        *tx.read(&counter)
    });
    assert_eq!(out, 100, "intra-tree serializability must hold in nesting mode");
    assert_eq!(*counter.read_committed(), 100);
}

/// Nesting mode and strong mode agree on conflict-free parallel work,
/// and opacity across top-level transactions holds in both.
#[test]
fn nesting_mode_cross_transaction_isolation() {
    let tm = Arc::new(Rtf::builder().workers(3).semantics(TreeSemantics::ParallelNesting).build());
    let a = VBox::new(0i64);
    let b = VBox::new(0i64);
    let handles: Vec<_> = (0..3)
        .map(|_| {
            let (tm, a, b) = (Arc::clone(&tm), a.clone(), b.clone());
            std::thread::spawn(move || {
                for _ in 0..60 {
                    tm.atomic(|tx| {
                        let a2 = a.clone();
                        let f = tx.submit(move |tx| {
                            let v = *tx.read(&a2);
                            tx.write(&a2, v + 1);
                        });
                        let _ = tx.eval(&f);
                        let v = *tx.read(&b);
                        tx.write(&b, v - 1);
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(*a.read_committed(), 180);
    assert_eq!(*b.read_committed(), -180);
}

/// Un-evaluated futures are still awaited before the top level commits in
/// nesting mode (no dangling sub-transactions).
#[test]
fn nesting_waits_for_unevaluated_futures() {
    let tm = Rtf::builder().workers(2).semantics(TreeSemantics::ParallelNesting).build();
    let x = VBox::new(0u64);
    tm.atomic(|tx| {
        let x2 = x.clone();
        let _unevaluated = tx.submit(move |tx| {
            std::thread::sleep(std::time::Duration::from_millis(15));
            tx.write(&x2, 9);
        });
        // Never eval'd: the runtime must still include its effects.
    });
    assert_eq!(*x.read_committed(), 9, "the future's write must be part of the commit");
}
