//! Property-style test of the paper's core guarantee: *any* program built
//! from reads, writes and (nested) transactional futures produces exactly
//! the results of its sequential execution — the one in which every future
//! body runs synchronously at its submission point (§II).
//!
//! Random programs are generated as trees of operations from a seeded PRNG
//! (deterministic across runs), executed twice: once by a trivial
//! sequential interpreter over a plain array, once by the TM with real
//! parallelism. Final box states and every context's accumulator must
//! match bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtf::{Rtf, Tx, VBox};
use std::sync::Arc;

const BOXES: usize = 6;

/// One step of a program; `Fork` splits into a future and a continuation.
#[derive(Clone, Debug)]
enum Step {
    /// Fold the value of box `k` into the accumulator.
    Read(u8),
    /// Write a value derived from the accumulator into box `k`.
    Write(u8),
    /// Fork: run the first program as a transactional future, the second as
    /// the continuation; both start from the current accumulator. The
    /// future's result is folded in afterwards.
    Fork(Box<Prog>, Box<Prog>),
}

type Prog = Vec<Step>;

fn mix(acc: u64, v: u64) -> u64 {
    acc.wrapping_mul(31).wrapping_add(v ^ 0x9E3779B9)
}

/// Sequential reference semantics.
fn interp(prog: &Prog, state: &mut [u64; BOXES], acc0: u64) -> u64 {
    let mut acc = acc0;
    for step in prog {
        match step {
            Step::Read(k) => acc = mix(acc, state[*k as usize % BOXES]),
            Step::Write(k) => {
                state[*k as usize % BOXES] = acc.wrapping_add(*k as u64);
            }
            Step::Fork(fut, cont) => {
                // Future first (serialized at its submission point), then
                // the continuation; both see the fork-point accumulator.
                let facc = interp(fut, state, acc);
                let cacc = interp(cont, state, acc);
                acc = mix(facc, cacc);
            }
        }
    }
    acc
}

/// The same semantics through the TM, futures actually parallel.
fn run_tm(tx: &mut Tx, prog: &Prog, boxes: &Arc<Vec<VBox<u64>>>, acc0: u64) -> u64 {
    let mut acc = acc0;
    for step in prog {
        match step {
            Step::Read(k) => acc = mix(acc, *tx.read(&boxes[*k as usize % BOXES])),
            Step::Write(k) => {
                tx.write(&boxes[*k as usize % BOXES], acc.wrapping_add(*k as u64));
            }
            Step::Fork(fut, cont) => {
                let fut2 = (**fut).clone();
                let boxes2 = Arc::clone(boxes);
                let facc_cacc = tx.fork(
                    move |tx| run_tm(tx, &fut2, &boxes2, acc0_of(acc)),
                    |tx, f| {
                        let cacc = run_tm(tx, cont, boxes, acc0_of(acc));
                        let facc = *tx.eval(f);
                        (facc, cacc)
                    },
                );
                let (facc, cacc) = facc_cacc;
                acc = mix(facc, cacc);
            }
        }
    }
    acc
}

// Helper so the closure captures a copy, keeping `run_tm` recursion simple.
fn acc0_of(acc: u64) -> u64 {
    acc
}

/// One random step. `depth` bounds fork nesting (matching the previous
/// proptest strategy: leaves are reads/writes, forks recurse twice at most
/// with 1–2 future steps and 0–2 continuation steps).
fn gen_step(rng: &mut StdRng, depth: u32) -> Step {
    if depth > 0 && rng.gen_range(0..4u32) == 0 {
        let fut: Prog = {
            let n = rng.gen_range(1..3usize);
            (0..n).map(|_| gen_step(rng, depth - 1)).collect()
        };
        let cont: Prog = {
            let n = rng.gen_range(0..3usize);
            (0..n).map(|_| gen_step(rng, depth - 1)).collect()
        };
        Step::Fork(Box::new(fut), Box::new(cont))
    } else if rng.gen_bool(0.5) {
        Step::Read(rng.gen_range(0..BOXES as u8))
    } else {
        Step::Write(rng.gen_range(0..BOXES as u8))
    }
}

fn gen_prog(rng: &mut StdRng, max_len: usize) -> Prog {
    let n = rng.gen_range(1..max_len);
    (0..n).map(|_| gen_step(rng, 2)).collect()
}

/// Random future-trees equal their sequential execution — final state
/// *and* accumulator.
#[test]
fn random_programs_match_sequential() {
    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(0x5E00 + seed);
        let prog = gen_prog(&mut rng, 8);

        // Reference run.
        let mut expect_state = [0u64; BOXES];
        for (i, s) in expect_state.iter_mut().enumerate() {
            *s = (i as u64 + 1) * 100;
        }
        let expect_acc = interp(&prog, &mut expect_state, 7);

        // TM run with real parallelism.
        let tm = Rtf::builder().workers(3).build();
        let boxes: Arc<Vec<VBox<u64>>> =
            Arc::new((0..BOXES).map(|i| VBox::new((i as u64 + 1) * 100)).collect());
        let got_acc = tm.atomic(|tx| run_tm(tx, &prog, &boxes, 7));

        assert_eq!(got_acc, expect_acc, "accumulator diverged (seed {seed}, prog {prog:?})");
        for (i, b) in boxes.iter().enumerate() {
            assert_eq!(
                *b.read_committed(),
                expect_state[i],
                "box {i} diverged (seed {seed}, prog {prog:?})"
            );
        }
    }
}

/// Ordered mode extends the equivalence *across* transactions: a batch of
/// random programs run as ticketed top-level transactions must equal the
/// sequential execution of those programs in ticket order — and the commit
/// log must be exactly the ticket order — even though worker threads race
/// through them out of order.
#[test]
fn ordered_mode_batch_matches_sequential_spec_in_ticket_order() {
    use rtf::CommitLog;
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(0x08D0 + seed);
        let progs: Vec<Prog> = (0..12).map(|_| gen_prog(&mut rng, 6)).collect();

        // Reference: one sequential pass, program k applied at position k.
        let mut expect_state = [0u64; BOXES];
        for (i, s) in expect_state.iter_mut().enumerate() {
            *s = (i as u64 + 1) * 100;
        }
        let expect_accs: Vec<u64> = progs.iter().map(|p| interp(p, &mut expect_state, 7)).collect();

        // TM: tickets drawn in program order pin the commit order; three
        // threads then race through disjoint round-robin slices (each
        // slice in increasing ticket order, so turn waits cannot
        // deadlock).
        let log = CommitLog::new();
        let tm = Rtf::builder().workers(2).ordered(1).event_sink(Arc::clone(&log) as _).build();
        let boxes: Arc<Vec<VBox<u64>>> =
            Arc::new((0..BOXES).map(|i| VBox::new((i as u64 + 1) * 100)).collect());
        let threads = 3;
        let mut per_thread: Vec<Vec<(usize, rtf::OrderedTicket)>> =
            (0..threads).map(|_| Vec::new()).collect();
        for k in 0..progs.len() {
            per_thread[k % threads].push((k, tm.ticket()));
        }
        let got_accs = {
            let accs = Arc::new(std::sync::Mutex::new(vec![0u64; progs.len()]));
            let handles: Vec<_> = per_thread
                .into_iter()
                .map(|slice| {
                    let tm = tm.clone();
                    let boxes = Arc::clone(&boxes);
                    let progs = progs.clone();
                    let accs = Arc::clone(&accs);
                    std::thread::spawn(move || {
                        for (k, ticket) in slice {
                            let prog = progs[k].clone();
                            let boxes = Arc::clone(&boxes);
                            let acc = tm
                                .run_ticketed(ticket, move |tx| run_tm(tx, &prog, &boxes, 7))
                                .expect("ticketed program failed");
                            accs.lock().unwrap()[k] = acc;
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("runner thread crashed");
            }
            Arc::try_unwrap(accs).unwrap().into_inner().unwrap()
        };

        assert_eq!(got_accs, expect_accs, "accumulators diverged (seed {seed})");
        for (i, b) in boxes.iter().enumerate() {
            assert_eq!(*b.read_committed(), expect_state[i], "box {i} diverged (seed {seed})");
        }
        // Commit log == ticket order: one lane, dense ascending sequence.
        let expected_log: Vec<(u32, u64)> = (0..progs.len() as u64).map(|s| (0, s)).collect();
        assert_eq!(log.entries(), expected_log, "commit order != ticket order (seed {seed})");
    }
}

/// The same programs must also be deterministic across repeated TM runs
/// (fresh boxes each time).
#[test]
fn tm_runs_are_deterministic() {
    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(0xDE7E + seed);
        let prog = gen_prog(&mut rng, 6);
        let run = || {
            let tm = Rtf::builder().workers(2).build();
            let boxes: Arc<Vec<VBox<u64>>> =
                Arc::new((0..BOXES).map(|i| VBox::new(i as u64)).collect());
            let acc = tm.atomic(|tx| run_tm(tx, &prog, &boxes, 1));
            let state: Vec<u64> = boxes.iter().map(|b| *b.read_committed()).collect();
            (acc, state)
        };
        assert_eq!(run(), run(), "non-deterministic result (seed {seed}, prog {prog:?})");
    }
}
