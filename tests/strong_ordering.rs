//! Integration tests of the strong ordering semantics (paper §II): the
//! result of any program using transactional futures equals the result of
//! the sequential program in which each future body runs synchronously at
//! its submission point.

use rtf::{Rtf, VBox};

fn tm() -> Rtf {
    Rtf::builder().workers(3).build()
}

/// The full Fig 3a tree, with every node reading and writing a shared box.
/// Sequential semantics fix the exact interleaving:
/// T0(pre), TF1(pre), TF2, TC3, TC4(pre), TF5, TC6 — each appending its tag.
#[test]
fn fig3a_tree_matches_sequential_trace() {
    let tm = tm();
    let log = VBox::new(Vec::<&'static str>::new());
    let push = |tx: &mut rtf::Tx, b: &VBox<Vec<&'static str>>, tag: &'static str| {
        let mut v = (*tx.read(b)).clone();
        v.push(tag);
        tx.write(b, v);
    };

    tm.atomic(|tx| {
        push(tx, &log, "T0");
        let log1 = log.clone();
        let log4 = log.clone();
        tx.fork(
            // Left subtree: TF1, which itself forks TF2 / TC3.
            move |tx| {
                push(tx, &log1, "TF1");
                let log2 = log1.clone();
                let log3 = log1.clone();
                tx.fork(
                    move |tx| push(tx, &log2, "TF2"),
                    move |tx, f2| {
                        push(tx, &log3, "TC3");
                        let _ = tx.eval(f2);
                    },
                );
            },
            // Right subtree: TC4, which forks TF5 / TC6.
            move |tx, f1| {
                push(tx, &log4, "TC4");
                let log5 = log4.clone();
                let log6 = log4.clone();
                tx.fork(
                    move |tx| push(tx, &log5, "TF5"),
                    move |tx, f5| {
                        push(tx, &log6, "TC6");
                        let _ = tx.eval(f5);
                    },
                );
                let _ = tx.eval(f1);
            },
        );
    });

    assert_eq!(
        *log.read_committed(),
        vec!["T0", "TF1", "TF2", "TC3", "TC4", "TF5", "TC6"],
        "strong ordering must reproduce the sequential trace of Fig 3a"
    );
}

/// A future and its continuation both increment the same counter many
/// times; sequentially the result is exact, and so it must be in parallel
/// (the continuation re-executes until it sees the future's writes).
#[test]
fn future_and_continuation_rmw_same_box() {
    let tm = tm();
    let counter = VBox::new(0u64);
    let out = tm.atomic(|tx| {
        tx.fork(
            {
                let counter = counter.clone();
                move |tx| {
                    for _ in 0..100 {
                        let v = *tx.read(&counter);
                        tx.write(&counter, v + 1);
                    }
                }
            },
            {
                let counter = counter.clone();
                move |tx, f| {
                    for _ in 0..100 {
                        let v = *tx.read(&counter);
                        tx.write(&counter, v + 1);
                    }
                    let _ = tx.eval(f);
                    *tx.read(&counter)
                }
            },
        )
    });
    assert_eq!(out, 200);
    assert_eq!(*counter.read_committed(), 200);
}

/// Chained submits: each future reads what every earlier future wrote
/// (serialized at submission), even though all bodies run concurrently.
#[test]
fn chained_futures_observe_predecessors() {
    let tm = tm();
    let b = VBox::new(1u64);
    let finals = tm.atomic(|tx| {
        let mut handles = Vec::new();
        for _ in 0..6 {
            let b2 = b.clone();
            handles.push(tx.submit(move |tx| {
                let v = *tx.read(&b2);
                tx.write(&b2, v * 2);
                v
            }));
        }
        handles.iter().map(|h| *tx.eval(h)).collect::<Vec<_>>()
    });
    assert_eq!(finals, vec![1, 2, 4, 8, 16, 32]);
    assert_eq!(*b.read_committed(), 64);
}

/// Evaluation timing must not affect serialization: evaluating futures in
/// reverse order yields the same values as in-order evaluation.
#[test]
fn evaluation_order_is_irrelevant() {
    let run = |reverse: bool| {
        let tm = tm();
        let b = VBox::new(3u64);
        tm.atomic(move |tx| {
            let mut handles = Vec::new();
            for i in 0..5u64 {
                let b2 = b.clone();
                handles.push(tx.submit(move |tx| {
                    let v = *tx.read(&b2);
                    tx.write(&b2, v + i);
                    v
                }));
            }
            let mut vals: Vec<u64> = if reverse {
                handles.iter().rev().map(|h| *tx.eval(h)).collect()
            } else {
                handles.iter().map(|h| *tx.eval(h)).collect()
            };
            if reverse {
                vals.reverse();
            }
            vals
        })
    };
    assert_eq!(run(false), run(true));
}

/// Deep nesting: a recursive parallel sum over a range must equal the
/// arithmetic result regardless of tree shape.
#[test]
fn recursive_divide_and_conquer_sum() {
    let tm = tm();
    let data: Vec<VBox<u64>> = (0..64).map(|i| VBox::new(i as u64)).collect();
    let data = std::sync::Arc::new(data);

    fn psum(tx: &mut rtf::Tx, data: &std::sync::Arc<Vec<VBox<u64>>>, lo: usize, hi: usize) -> u64 {
        if hi - lo <= 8 {
            return (lo..hi).map(|i| *tx.read(&data[i])).sum();
        }
        let mid = (lo + hi) / 2;
        let d2 = std::sync::Arc::clone(data);
        tx.fork(
            move |tx| psum(tx, &d2, lo, mid),
            |tx, f| {
                let right = psum(tx, data, mid, hi);
                *tx.eval(f) + right
            },
        )
    }

    let total = tm.atomic(|tx| psum(tx, &data, 0, 64));
    assert_eq!(total, (0..64u64).sum());
}

/// The ordered lane extends strong ordering *across* top-level
/// transactions: tickets drawn in submission order fix the inter-transaction
/// order, and inside each transaction the paper's intra-tree ordering fixes
/// the rest — so a shared trace must read exactly as the fully sequential
/// program, transaction by transaction, fork by fork.
#[test]
fn ordered_lane_composes_with_intra_tree_strong_ordering() {
    let tm = Rtf::builder().workers(3).ordered(1).build();
    let trace = VBox::new(Vec::<u64>::new());
    let push = |tx: &mut rtf::Tx, b: &VBox<Vec<u64>>, tag: u64| {
        let mut v = (*tx.read(b)).clone();
        v.push(tag);
        tx.write(b, v);
    };

    // Tickets drawn in order 0..6; three threads then run disjoint
    // round-robin slices concurrently (each slice in increasing ticket
    // order, so turn waits cannot deadlock).
    let n = 6u64;
    let threads = 3;
    let mut per_thread: Vec<Vec<(u64, rtf::OrderedTicket)>> =
        (0..threads).map(|_| Vec::new()).collect();
    for i in 0..n {
        per_thread[(i as usize) % threads].push((i, tm.ticket()));
    }
    let handles: Vec<_> = per_thread
        .into_iter()
        .map(|slice| {
            let tm = tm.clone();
            let trace = trace.clone();
            std::thread::spawn(move || {
                for (i, ticket) in slice {
                    let trace = trace.clone();
                    tm.run_ticketed(ticket, move |tx| {
                        // Transaction i writes [10i, 10i+1, 10i+2]: root,
                        // then its future, then its continuation.
                        push(tx, &trace, 10 * i);
                        let tf = trace.clone();
                        let tc = trace.clone();
                        tx.fork(
                            move |tx| push(tx, &tf, 10 * i + 1),
                            move |tx, f| {
                                push(tx, &tc, 10 * i + 2);
                                let _ = tx.eval(f);
                            },
                        );
                    })
                    .expect("ticketed transaction failed");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("runner thread crashed");
    }

    let expect: Vec<u64> = (0..n).flat_map(|i| [10 * i, 10 * i + 1, 10 * i + 2]).collect();
    assert_eq!(
        *trace.read_committed(),
        expect,
        "cross-transaction ticket order must compose with intra-tree ordering"
    );
    let s = tm.stats();
    assert_eq!(s.tickets_issued, n);
    assert_eq!(s.ordered_commits, n);
    assert_eq!(s.tickets_abandoned, 0);
}

/// Writes by later-serialized sub-transactions must not leak into earlier
/// ones: the future (serialized first) must never see the continuation's
/// write even when the continuation commits while the future still runs.
#[test]
fn no_backward_leakage() {
    for _ in 0..20 {
        let tm = tm();
        let a = VBox::new(0u64);
        let b = VBox::new(0u64);
        let (fut_saw, _) = tm.atomic(|tx| {
            tx.fork(
                {
                    let a = a.clone();
                    move |tx| {
                        // Give the continuation a head start sometimes.
                        std::thread::yield_now();
                        *tx.read(&a)
                    }
                },
                {
                    let a = a.clone();
                    let b = b.clone();
                    move |tx, f| {
                        tx.write(&a, 99);
                        let v = *tx.read(&b);
                        tx.write(&b, v + 1);
                        (*tx.eval(f), ())
                    }
                },
            )
        });
        assert_eq!(fut_saw, 0, "future serialized before its continuation");
    }
}
