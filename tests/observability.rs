//! End-to-end observability: a contended run with futures feeds a [`TxObs`]
//! attached via [`rtf::RtfBuilder::observer`], and everything the ISSUE's
//! acceptance criteria name must come out the other side — populated
//! latency histograms, abort attribution, lifecycle spans that nest, and
//! export documents that parse.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rtf::{ObsConfig, Rtf, TxObs, VBox};
use rtf_txobs::{chrome_trace, Json, SpanKind};

/// Two clients increment a shared counter through a future + continuation,
/// forcing waitTurn blocking, validation work, and top-level conflicts.
fn contended_run(tm: &Rtf, clients: usize, ops: usize) -> u64 {
    let b = VBox::new(0u64);
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let tm = tm.clone();
            let b = b.clone();
            std::thread::spawn(move || {
                for _ in 0..ops {
                    tm.atomic(|tx| {
                        let f = tx.submit({
                            let b = b.clone();
                            move |tx| *tx.read(&b)
                        });
                        let v = *tx.eval(&f);
                        tx.write(&b, v + 1);
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    *b.read_committed()
}

#[test]
fn observer_collects_histograms_spans_and_attribution() {
    let obs = TxObs::new(ObsConfig::default());
    let tm = Rtf::builder().workers(2).observer(Arc::clone(&obs)).build();
    let total = contended_run(&tm, 4, 60);
    assert_eq!(total, 240);

    // A guaranteed waitTurn block: the future sleeps, so its continuation
    // reaches sub-commit first and must wait for its turn.
    tm.atomic(|tx| {
        tx.fork(|_tx| std::thread::sleep(std::time::Duration::from_millis(10)), |_tx, _f| ())
    });

    // A guaranteed top-level validation abort, attributed to `hot`: the
    // first execution commits a conflicting write from another thread
    // between its snapshot and its own commit.
    let hot = VBox::new(0u64);
    let interfered = AtomicBool::new(false);
    tm.atomic(|tx| {
        let v = *tx.read(&hot);
        if !interfered.swap(true, Ordering::SeqCst) {
            let tm2 = tm.clone();
            let hot2 = hot.clone();
            std::thread::spawn(move || {
                tm2.atomic(|tx| {
                    let v = *tx.read(&hot2);
                    tx.write(&hot2, v + 100);
                })
            })
            .join()
            .unwrap();
        }
        tx.write(&hot, v + 1);
    });
    assert_eq!(*hot.read_committed(), 101);

    let m = obs.metrics();
    // The write-free fork transaction commits via the read-only fast path.
    assert_eq!(m.counters.top_commits, 240 + 2);
    assert_eq!(m.counters.commits(), 240 + 3);
    assert!(m.counters.futures_submitted >= 241);
    // Every histogram the export names must have samples (the RO fast path
    // skips the commit-latency histogram).
    assert_eq!(m.commit.count, 240 + 2);
    assert!(m.wait_turn.count > 0, "the sleeping future must force a waitTurn block");
    assert!(m.validation.count > 0);
    assert!(m.future_lifetime.count >= 241);
    for h in [&m.commit, &m.wait_turn, &m.validation, &m.future_lifetime] {
        assert!(h.p50 <= h.p95 && h.p95 <= h.p99 && h.p99 <= h.max);
        assert!(h.max > 0);
    }

    // The lock-free read path attributes every snapshot read: each of the
    // 240 ops reads through a future, so the flushed batches must cover at
    // least that many, and the wait-free fast path must actually fire.
    let reads = m.counters.read_fast + m.counters.read_slow;
    assert!(reads >= 240, "read-path batches missing: {:?}", m.counters);
    assert!(m.counters.read_fast > 0, "wait-free fast path never fired: {:?}", m.counters);

    // The engineered conflict must show up as attributed aborts.
    assert!(m.counters.top_validation_aborts >= 1, "not contended: {:?}", m.counters);
    assert!(!m.hotspots.is_empty());
    let hot_cell = m.hotspots.iter().find(|h| h.cell == hot.cell().id().raw() as u64);
    let hot_cell = hot_cell.expect("the engineered conflict cell appears in the hotspot table");
    assert!(hot_cell.top_validation >= 1);

    let spans = obs.collected_spans();
    assert!(m.spans_recorded > 0);
    assert_eq!(spans.len() as u64, m.spans_recorded, "nothing drained before the rings filled");
    let count = |kind: SpanKind| spans.iter().filter(|s| s.rec.kind == kind).count() as u64;
    assert!(count(SpanKind::TopLevel) >= 240);
    assert!(count(SpanKind::TopCommit) >= 240);
    assert!(count(SpanKind::WaitTurn) > 0);
    assert!(count(SpanKind::Validation) > 0);
    // A transaction driven into sequential fallback runs its futures inline
    // (no sub-transactions), so future/continuation spans can fall short of
    // one-per-transaction only by the number of fallback runs.
    let fallbacks = m.counters.fallback_runs;
    assert!(count(SpanKind::Future) + fallbacks >= 240);
    assert!(count(SpanKind::Continuation) + fallbacks >= 240);

    // Nesting: every successful future span lies inside a top-level span of
    // the same tree — what Perfetto renders as the transaction flamegraph.
    let ok_futures: Vec<_> =
        spans.iter().filter(|s| s.rec.kind == SpanKind::Future && s.rec.ok).collect();
    assert!(!ok_futures.is_empty());
    for f in &ok_futures {
        assert!(
            spans.iter().any(|t| {
                t.rec.kind == SpanKind::TopLevel
                    && t.rec.tree == f.rec.tree
                    && t.rec.start_ns <= f.rec.start_ns
                    && f.rec.end_ns <= t.rec.end_ns
            }),
            "future span {f:?} not nested under its top-level span"
        );
    }

    // The exporters accept the real data: both documents re-parse.
    let metrics = Json::parse(&m.to_json().pretty()).unwrap();
    assert_eq!(metrics.path(&["counters", "top_commits"]).and_then(Json::as_u64), Some(242));
    assert_eq!(
        metrics.path(&["counters", "read_fast"]).and_then(Json::as_u64),
        Some(m.counters.read_fast),
        "read_fast missing from the JSON export"
    );
    assert_eq!(
        metrics.path(&["counters", "read_slow"]).and_then(Json::as_u64),
        Some(m.counters.read_slow),
    );
    let trace = Json::parse(&chrome_trace(&spans).pretty()).unwrap();
    assert!(!trace.get("traceEvents").unwrap().as_arr().unwrap().is_empty());
}

#[test]
fn dropping_the_tm_writes_configured_exports() {
    let dir = std::env::temp_dir().join(format!("rtf-obs-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let exports = rtf::ExportPaths {
        metrics_json: Some(dir.join("metrics.json")),
        text: Some(dir.join("report.txt")),
        chrome_trace: Some(dir.join("trace.json")),
    };
    let obs = TxObs::with_exports(ObsConfig::default(), exports);
    {
        let tm = Rtf::builder().workers(2).observer(obs).build();
        contended_run(&tm, 2, 20);
    } // drop exports

    let metrics = Json::parse(&std::fs::read_to_string(dir.join("metrics.json")).unwrap()).unwrap();
    assert_eq!(metrics.get("schema").and_then(Json::as_str), Some("rtf-metrics-v1"));
    assert_eq!(metrics.path(&["counters", "top_commits"]).and_then(Json::as_u64), Some(40));
    assert!(
        metrics.path(&["histograms_ns", "commit", "count"]).and_then(Json::as_u64).unwrap() > 0
    );
    let report = std::fs::read_to_string(dir.join("report.txt")).unwrap();
    assert!(report.contains("rtf metrics") && report.contains("commit"));
    let trace = Json::parse(&std::fs::read_to_string(dir.join("trace.json")).unwrap()).unwrap();
    assert!(!trace.get("traceEvents").unwrap().as_arr().unwrap().is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn one_observer_aggregates_many_tms() {
    let obs = TxObs::new(ObsConfig { spans: false, ..ObsConfig::default() });
    for _ in 0..3 {
        let tm = Rtf::builder().workers(1).observer(Arc::clone(&obs)).build();
        let b = VBox::new(0u64);
        tm.atomic(|tx| tx.write(&b, 1));
    }
    let m = obs.metrics();
    assert_eq!(m.counters.top_commits, 3, "sidecar-style aggregation across TMs");
    assert_eq!(m.commit.count, 3);
    assert_eq!(m.spans_recorded, 0, "spans off ⇒ nothing recorded");
}
