//! End-to-end workload tests: Vacation and TPC-C behave identically with
//! and without intra-transaction parallelism, under real concurrency, and
//! keep their domain invariants.

use rtf::Rtf;
use rtf_tpcc::workload::{run_op, TpccOp};
use rtf_tpcc::{TpccConfig, TpccExecutor, TpccScale};
use rtf_vacation::{Client, VacationConfig};
use std::sync::Arc;

/// The same pre-generated Vacation workload, executed sequentially (no
/// futures) and with 3 futures per transaction, must produce the same
/// per-operation results and the same final table contents.
#[test]
fn vacation_parallel_equals_sequential() {
    let results: Vec<(Vec<u64>, u64)> = [0usize, 3]
        .into_iter()
        .map(|futures| {
            let tm = Rtf::builder().workers(4).build();
            let cfg = VacationConfig {
                relations: 256,
                queries_per_tx: 24,
                user_pct: 70,
                audit_pct: 10,
                seed: 99,
                ..VacationConfig::default()
            };
            let w = cfg.build(&tm, 80);
            let client = Client::new(tm.clone(), w.manager.clone(), futures);
            let per_op: Vec<u64> = w.ops.iter().map(|op| client.execute(op)).collect();
            // Fingerprint the final state: every customer's bill plus every
            // table's free units.
            let fingerprint = tm.atomic(|tx| {
                let mut acc = 0u64;
                for kind in rtf_vacation::manager::KINDS {
                    for (id, price) in w.manager.scan_price_range(tx, kind, 0, 256, 0, u32::MAX) {
                        acc = acc
                            .wrapping_mul(31)
                            .wrapping_add(id ^ (price as u64) << 8)
                            .wrapping_add(w.manager.query_free(tx, kind, id).unwrap_or(0) as u64);
                    }
                }
                for c in 0..256 {
                    acc = acc
                        .wrapping_mul(33)
                        .wrapping_add(w.manager.query_bill(tx, c).map_or(7, |b| b as u64));
                }
                acc
            });
            assert!(tm.atomic(|tx| w.manager.check_consistency(tx)));
            (per_op, fingerprint)
        })
        .collect();
    assert_eq!(results[0].0, results[1].0, "per-op results must match");
    assert_eq!(results[0].1, results[1].1, "final state must match");
}

/// TPC-C: same invariance between sequential and future-parallel runs.
#[test]
fn tpcc_parallel_equals_sequential() {
    let results: Vec<(Vec<i64>, bool, bool, i64)> = [0usize, 3]
        .into_iter()
        .map(|futures| {
            let tm = Rtf::builder().workers(4).build();
            let cfg = TpccConfig {
                scale: TpccScale {
                    warehouses: 1,
                    customers_per_district: 20,
                    items: 128,
                    seed: 13,
                },
                seed: 31,
                ..TpccConfig::default()
            };
            let w = cfg.build(&tm, 70);
            let ex = TpccExecutor::new(tm.clone(), w.db.clone(), futures);
            let per_op: Vec<i64> = w.ops.iter().map(|op| run_op(&ex, op)).collect();
            let (ytd, oid) = tm
                .atomic(|tx| (w.db.check_ytd_consistency(tx), w.db.check_order_id_consistency(tx)));
            let audit = ex.warehouse_audit(0);
            (per_op, ytd, oid, audit)
        })
        .collect();
    assert_eq!(results[0].0, results[1].0, "per-op results must match");
    assert!(results[0].1 && results[1].1, "YTD consistency");
    assert!(results[0].2 && results[1].2, "order-id consistency");
    assert_eq!(results[0].3, results[1].3, "audit totals must match");
}

/// Vacation under real multi-client concurrency keeps its accounting
/// invariant, with futures enabled.
#[test]
fn vacation_concurrent_consistency() {
    let tm = Rtf::builder().workers(4).fallback_threshold(2).build();
    let cfg = VacationConfig {
        relations: 128,
        queries_per_tx: 16,
        query_range_pct: 60, // hot: drive real conflicts
        user_pct: 75,
        audit_pct: 5,
        seed: 5,
    };
    let w = cfg.build(&tm, 240);
    let client = Arc::new(Client::new(tm.clone(), w.manager.clone(), 2));
    let ops = Arc::new(w.ops);
    std::thread::scope(|s| {
        for c in 0..3 {
            let client = Arc::clone(&client);
            let ops = Arc::clone(&ops);
            s.spawn(move || {
                for op in ops.iter().skip(c).step_by(3) {
                    client.execute(op);
                }
            });
        }
    });
    assert!(tm.atomic(|tx| w.manager.check_consistency(tx)));
    let stats = tm.stats();
    assert!(stats.commits() >= 240, "{stats:?}");
}

/// TPC-C under multi-client concurrency: the spec's consistency conditions
/// hold afterwards, and payments/orders are all accounted for.
#[test]
fn tpcc_concurrent_consistency() {
    let tm = Rtf::builder().workers(4).fallback_threshold(2).build();
    let cfg = TpccConfig {
        scale: TpccScale { warehouses: 1, customers_per_district: 15, items: 96, seed: 3 },
        ..TpccConfig::default()
    };
    let w = cfg.build(&tm, 180);
    let ex = Arc::new(TpccExecutor::new(tm.clone(), w.db.clone(), 2));
    let new_orders_expected = w
        .ops
        .iter()
        .filter(|o| match o {
            // Orders carrying the spec's 1% invalid item roll back and
            // must NOT consume an order id.
            TpccOp::NewOrder { lines, .. } => lines.iter().all(|l| l.i_id != u64::MAX),
            _ => false,
        })
        .count() as u32;
    let ops = Arc::new(w.ops);
    std::thread::scope(|s| {
        for c in 0..3 {
            let ex = Arc::clone(&ex);
            let ops = Arc::clone(&ops);
            s.spawn(move || {
                for op in ops.iter().skip(c).step_by(3) {
                    run_op(&ex, op);
                }
            });
        }
    });
    let (ytd, oid, orders_created) = tm.atomic(|tx| {
        let mut created = 0u32;
        for d in 0..rtf_tpcc::model::DISTRICTS_PER_WAREHOUSE {
            created +=
                w.db.districts
                    .get(tx, &rtf_tpcc::model::district_key(0, d))
                    .expect("district")
                    .next_o_id
                    - 1;
        }
        (w.db.check_ytd_consistency(tx), w.db.check_order_id_consistency(tx), created)
    });
    assert!(ytd, "W_YTD == sum(D_YTD)");
    assert!(oid, "dense order ids");
    assert_eq!(orders_created, new_orders_expected, "every NewOrder created exactly one order");
}
