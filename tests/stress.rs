//! Stress tests: sustained concurrency, deep nesting, races between
//! evaluation, helping and teardown. These exist to shake out coordination
//! bugs (lost wakeups, helping inversion, leaked tentative entries).

use rtf::{Rtf, VBox};
use std::sync::Arc;

/// The scenario that once deadlocked the runtime (helping inversion): many
/// chained read-only futures per transaction, several client threads, a
/// large worker pool on few cores.
#[test]
fn chained_ro_futures_many_clients() {
    let tm = Arc::new(Rtf::builder().workers(8).build());
    let data: Arc<Vec<VBox<u64>>> = Arc::new((0..256).map(|i| VBox::new(i as u64)).collect());
    let expect: u64 = (0..256u64).sum();
    let handles: Vec<_> = (0..3)
        .map(|_| {
            let (tm, data) = (Arc::clone(&tm), Arc::clone(&data));
            std::thread::spawn(move || {
                for _ in 0..60 {
                    let d = Arc::clone(&data);
                    let sum = tm.atomic_ro(move |tx| {
                        let shards = 8usize;
                        let per = d.len() / shards;
                        let mut hs = Vec::new();
                        for s in 1..shards {
                            let d2 = Arc::clone(&d);
                            hs.push(tx.submit(move |tx| {
                                (s * per..(s + 1) * per).map(|i| *tx.read(&d2[i])).sum::<u64>()
                            }));
                        }
                        let mut acc: u64 = (0..per).map(|i| *tx.read(&d[i])).sum();
                        for h in &hs {
                            acc += *tx.eval(h);
                        }
                        acc
                    });
                    assert_eq!(sum, expect);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

/// Mixed read-write traffic with nested forks under contention; exactness
/// of the final state is the oracle.
#[test]
fn mixed_nested_contention() {
    let tm = Arc::new(Rtf::builder().workers(4).fallback_threshold(2).build());
    let cells: Arc<Vec<VBox<u64>>> = Arc::new((0..8).map(|_| VBox::new(0u64)).collect());
    let threads = 4;
    let per = 60;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let (tm, cells) = (Arc::clone(&tm), Arc::clone(&cells));
            std::thread::spawn(move || {
                for i in 0..per {
                    let target = (t + i) % cells.len();
                    let c1 = cells[target].clone();
                    let c2 = cells[(target + 1) % cells.len()].clone();
                    tm.atomic(move |tx| {
                        let c1a = c1.clone();
                        tx.fork(
                            move |tx| {
                                let v = *tx.read(&c1a);
                                tx.write(&c1a, v + 1);
                            },
                            |tx, f| {
                                let _ = tx.eval(f);
                            },
                        );
                        // Post-join: increment the second cell at top level.
                        let v = *tx.read(&c2);
                        tx.write(&c2, v + 1);
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let total: u64 = cells.iter().map(|c| *c.read_committed()).sum();
    assert_eq!(total, (threads * per * 2) as u64);
}

/// Deep chains of dependent futures (each reads the previous one's box).
#[test]
fn deep_dependency_chains() {
    let tm = Rtf::builder().workers(4).build();
    let depth = 24;
    let boxes: Arc<Vec<VBox<u64>>> = Arc::new((0..depth).map(|_| VBox::new(0u64)).collect());
    let b = Arc::clone(&boxes);
    let out = tm.atomic(move |tx| {
        let mut handles = Vec::new();
        for i in 0..depth {
            let b2 = Arc::clone(&b);
            handles.push(tx.submit(move |tx| {
                let prev = if i == 0 { 1 } else { *tx.read(&b2[i - 1]) };
                tx.write(&b2[i], prev + 1);
                prev
            }));
        }
        handles.iter().map(|h| *tx.eval(h)).collect::<Vec<_>>()
    });
    let want: Vec<u64> = (0..depth as u64).map(|i| i + 1).collect();
    assert_eq!(out, want);
    assert_eq!(*boxes[depth - 1].read_committed(), depth as u64 + 1);
}

/// Teardown under fire: user panics in random futures must always
/// propagate cleanly and leave the boxes scrubbed.
#[test]
fn panics_under_concurrency_leave_clean_state() {
    let tm = Arc::new(Rtf::builder().workers(3).build());
    let b = VBox::new(0u64);
    for round in 0..30 {
        let b2 = b.clone();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            tm.atomic(|tx| {
                let b3 = b2.clone();
                let f = tx.submit(move |tx| {
                    let v = *tx.read(&b3);
                    tx.write(&b3, v + 1);
                    if v % 2 == round % 2 {
                        panic!("induced failure");
                    }
                    v
                });
                *tx.eval(&f)
            })
        }));
        if r.is_err() {
            // The aborted tree must leave no tentative residue.
            assert!(b
                .cell()
                .tentative_lock()
                .iter()
                .all(|e| { e.orec.status() == rtf_txbase::OrecStatus::Aborted }));
        }
    }
    // The box still works.
    let b4 = b.clone();
    tm.atomic(move |tx| {
        let v = *tx.read(&b4);
        tx.write(&b4, v + 100);
    });
    assert!(*b.read_committed() >= 100);
}

/// Zero-worker pools serve everything through helping, even under
/// multi-client contention.
#[test]
fn zero_workers_full_mix() {
    let tm = Arc::new(Rtf::builder().workers(0).build());
    let hot = VBox::new(0u64);
    let handles: Vec<_> = (0..3)
        .map(|_| {
            let (tm, hot) = (Arc::clone(&tm), hot.clone());
            std::thread::spawn(move || {
                for _ in 0..50 {
                    tm.atomic(|tx| {
                        let h2 = hot.clone();
                        let f = tx.submit(move |tx| *tx.read(&h2));
                        let base = *tx.eval(&f);
                        tx.write(&hot, base + 1);
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(*hot.read_committed(), 150);
}

/// Sustained run with every feature at once: forks, submits, read-only
/// passes, contention, fallback — the grand smoke test.
#[test]
fn kitchen_sink() {
    let tm = Arc::new(Rtf::builder().workers(4).fallback_threshold(1).build());
    let accounts: Arc<Vec<VBox<i64>>> = Arc::new((0..16).map(|_| VBox::new(1000i64)).collect());
    let total0: i64 = 16 * 1000;

    let handles: Vec<_> = (0..4)
        .map(|t| {
            let (tm, accounts) = (Arc::clone(&tm), Arc::clone(&accounts));
            std::thread::spawn(move || {
                for i in 0..80 {
                    match (t + i) % 3 {
                        // Transfer with a future computing the fee.
                        0 => {
                            let from = accounts[(t * 3 + i) % 16].clone();
                            let to = accounts[(t * 5 + i * 7) % 16].clone();
                            tm.atomic(move |tx| {
                                let from2 = from.clone();
                                let fee = tx.submit(move |tx| *tx.read(&from2) % 7);
                                let f = *tx.read(&from);
                                let tval = *tx.read(&to);
                                let fee = *tx.eval(&fee);
                                if std::ptr::eq(from.cell().as_ref(), to.cell().as_ref()) {
                                    return;
                                }
                                tx.write(&from, f - 50 - fee);
                                tx.write(&to, tval + 50 + fee);
                            });
                        }
                        // Parallel audit: total must be conserved modulo fees.
                        1 => {
                            let accs = Arc::clone(&accounts);
                            tm.atomic_ro(move |tx| {
                                let a1 = Arc::clone(&accs);
                                let f = tx.submit(move |tx| {
                                    a1[..8].iter().map(|a| *tx.read(a)).sum::<i64>()
                                });
                                let hi: i64 = accs[8..].iter().map(|a| *tx.read(a)).sum();
                                let _total = *tx.eval(&f) + hi;
                            });
                        }
                        // Fork-based rebalance of a pair.
                        _ => {
                            let x = accounts[(t + i) % 16].clone();
                            let y = accounts[(t + i + 1) % 16].clone();
                            tm.atomic(move |tx| {
                                let x2 = x.clone();
                                let avg = tx.fork(
                                    move |tx| *tx.read(&x2),
                                    |tx, f| {
                                        let xv = *tx.eval(f);
                                        let yv = *tx.read(&y);
                                        let avg = (xv + yv) / 2;
                                        tx.write(&y, xv + yv - avg);
                                        avg
                                    },
                                );
                                tx.write(&x, avg);
                            });
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Fees moved money BETWEEN accounts only: the grand total is conserved.
    let total: i64 = accounts.iter().map(|a| *a.read_committed()).sum();
    assert_eq!(total, total0, "money must be conserved");
    let s = tm.stats();
    assert!(s.commits() >= 4 * 80);
}
