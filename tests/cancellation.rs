//! Explicit abort APIs: `Tx::cancel` (deliberate rollback, TPC-C-style)
//! and `Tx::restart` (retry with a fresh snapshot).

use rtf::{Cancelled, Rtf, VBox};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn cancel_discards_all_effects() {
    let tm = Rtf::builder().workers(2).build();
    let a = VBox::new(10u64);
    let b = VBox::new(20u64);
    let r: Result<(), Cancelled> = tm.try_atomic(|tx| {
        tx.write(&a, 99);
        let b2 = b.clone();
        let f = tx.submit(move |tx| {
            tx.write(&b2, 99);
            0u8
        });
        let _ = tx.eval(&f);
        tx.cancel()
    });
    assert_eq!(r, Err(Cancelled));
    assert_eq!(*a.read_committed(), 10, "root write discarded");
    assert_eq!(*b.read_committed(), 20, "future's committed sub-write discarded");
    assert!(a.cell().tentative_lock().is_empty());
    assert!(b.cell().tentative_lock().is_empty());
}

#[test]
fn cancel_from_inside_a_future() {
    let tm = Rtf::builder().workers(2).build();
    let a = VBox::new(1u64);
    let a2 = a.clone();
    let r = tm.try_atomic(move |tx| {
        let a3 = a2.clone();
        let f = tx.submit(move |tx| {
            tx.write(&a3, 5);
            tx.cancel()
        });
        let _: Arc<()> = tx.eval(&f);
        7u64
    });
    assert_eq!(r, Err(Cancelled));
    assert_eq!(*a.read_committed(), 1);
}

#[test]
fn try_atomic_ok_path_commits() {
    let tm = Rtf::builder().workers(1).build();
    let a = VBox::new(0u64);
    let r = tm.try_atomic(|tx| {
        tx.write(&a, 3);
        42u64
    });
    assert_eq!(r, Ok(42));
    assert_eq!(*a.read_committed(), 3);
}

#[test]
#[should_panic(expected = "try_atomic")]
fn cancel_inside_plain_atomic_panics_with_guidance() {
    let tm = Rtf::builder().workers(1).build();
    tm.atomic(|tx| tx.cancel());
}

#[test]
fn restart_reruns_with_fresh_snapshot() {
    let tm = Rtf::builder().workers(1).build();
    let a = VBox::new(0u64);
    let attempts = Arc::new(AtomicU64::new(0));
    let att = Arc::clone(&attempts);
    let a2 = a.clone();
    let tm2 = tm.clone();
    let out = tm.atomic(move |tx| {
        let n = att.fetch_add(1, Ordering::Relaxed);
        if n < 2 {
            // Sneak in a concurrent commit, then demand a fresh snapshot.
            let a3 = a2.clone();
            tm2.atomic(move |tx2| {
                let v = *tx2.read(&a3);
                tx2.write(&a3, v + 1);
            });
            tx.restart();
        }
        *tx.read(&a2)
    });
    assert_eq!(attempts.load(Ordering::Relaxed), 3);
    assert_eq!(out, 2, "the final attempt reads the freshest snapshot");
}

#[test]
fn cancelled_transactions_count_as_no_commit() {
    let tm = Rtf::builder().workers(1).build();
    let a = VBox::new(0u64);
    for _ in 0..5 {
        let _ = tm.try_atomic(|tx| {
            tx.write(&a, 1);
            tx.cancel()
        });
    }
    assert_eq!(tm.stats().top_commits, 0);
    assert_eq!(*a.read_committed(), 0);
}
