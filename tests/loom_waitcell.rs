//! Model-check-style tests for the unified blocking primitives
//! (`rtf_txbase::wait`): the `WaitCell` register/notify/drop races and the
//! `WaitQueue` epoch-token protocol's lost-wakeup freedom.
//!
//! Compiled only under `--cfg loom` so the tier-1 `cargo test` run is
//! unaffected:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p rtf-integration --test loom_waitcell --release
//! ```
//!
//! The vendored `loom` is an offline shim (randomized stress scheduling over
//! the loom API, not exhaustive DPOR — see `vendor/loom/src/lib.rs` for the
//! fidelity caveats); swapping in the real crate requires no changes here.
//! Each `loom::model` closure is one small, fixed scenario with full-state
//! assertions, exactly the shape real loom wants.

#![cfg(loom)]

use loom::thread;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Wake, Waker};
use std::time::Duration;

use rtf_txbase::{Parked, WaitCell, WaitQueue, WaiterHandle, WakerReg};

/// A countable waker for asserting exactly-once fire semantics.
struct CountWake(AtomicUsize);

impl Wake for CountWake {
    fn wake(self: Arc<Self>) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

fn count_waker() -> (Arc<CountWake>, Waker) {
    let cw = Arc::new(CountWake(AtomicUsize::new(0)));
    let waker = Waker::from(Arc::clone(&cw));
    (cw, waker)
}

/// The oneshot race itself: registration and notification on two threads in
/// every order. Whatever the interleaving, the waker fires exactly once OR
/// the registration observes the latch and refuses — never both, never
/// neither (the lost-wakeup case).
#[test]
fn cell_register_vs_notify_never_loses_the_wakeup() {
    loom::model(|| {
        let cell = Arc::new(WaitCell::new());
        let (count, waker) = count_waker();

        let registrar = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                thread::yield_now();
                cell.register(WaiterHandle::Waker(waker))
            })
        };
        let notifier = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                thread::yield_now();
                cell.notify()
            })
        };
        let registered = registrar.join().unwrap();
        let woke = notifier.join().unwrap();
        let fired = count.0.load(Ordering::SeqCst);
        if registered {
            // The slot was armed before the notify: the notify must have
            // taken and fired it.
            assert!(woke, "registered waker not taken by the notify");
            assert_eq!(fired, 1, "registered waker must fire exactly once");
        } else {
            // The latch won: the registrar was refused and must re-check
            // its predicate; no waker was ever armed to fire.
            assert!(!woke, "refused registration cannot have been woken");
            assert_eq!(fired, 0);
        }
        assert!(cell.is_notified(), "cell must end latched either way");
    });
}

/// Withdrawal vs notification: an `unregister` racing a `notify` must end
/// with a latched cell and at most one fire — and a fire only if the notify
/// took the handle before the withdrawal removed it.
#[test]
fn cell_unregister_vs_notify_is_at_most_once() {
    loom::model(|| {
        let cell = Arc::new(WaitCell::new());
        let (count, waker) = count_waker();
        assert!(cell.register(WaiterHandle::Waker(waker)));

        let withdrawer = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                thread::yield_now();
                cell.unregister();
            })
        };
        let notifier = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || cell.notify())
        };
        withdrawer.join().unwrap();
        let woke = notifier.join().unwrap();
        let fired = count.0.load(Ordering::SeqCst);
        assert_eq!(fired, usize::from(woke), "fire count must match the notify's claim");
        assert!(fired <= 1);
        assert!(cell.is_notified(), "notify latches whether or not a handle remained");
    });
}

/// Thread backend, same race: a parked thread and a notifier. The consume
/// step (`take_notified`) must hand the latch to exactly one observer.
#[test]
fn cell_thread_park_vs_notify_consumes_once() {
    loom::model(|| {
        let cell = Arc::new(WaitCell::new());
        let done = Arc::new(AtomicBool::new(false));

        let waiter = {
            let cell = Arc::clone(&cell);
            let done = Arc::clone(&done);
            thread::spawn(move || {
                // The waiter's standard protocol: check, register, re-check
                // via the register verdict, park until latched.
                while !cell.is_notified() {
                    if !cell.register(WaiterHandle::current_thread()) {
                        break;
                    }
                    if cell.is_notified() {
                        break;
                    }
                    std::thread::park_timeout(Duration::from_micros(50));
                }
                assert!(cell.take_notified(), "waiter must consume the latch");
                done.store(true, Ordering::SeqCst);
            })
        };
        let notifier = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                thread::yield_now();
                cell.notify();
            })
        };
        notifier.join().unwrap();
        waiter.join().unwrap();
        assert!(done.load(Ordering::SeqCst));
        assert!(!cell.is_notified(), "take_notified must have cleared the latch");
    });
}

/// The queue's epoch-token protocol: a waiter samples its token, checks the
/// predicate, and parks; a notifier sets the predicate and notifies. In
/// every interleaving the waiter must observe the predicate — the token
/// turns the notify-before-park order into `Parked::Raced`, never a sleep
/// through the only wakeup.
#[test]
fn queue_park_vs_notify_is_lost_wakeup_free() {
    loom::model(|| {
        let q = Arc::new(WaitQueue::new());
        let ready = Arc::new(AtomicBool::new(false));

        let waiter = {
            let q = Arc::clone(&q);
            let ready = Arc::clone(&ready);
            thread::spawn(move || {
                let mut parks = 0u32;
                loop {
                    let token = q.epoch();
                    if ready.load(Ordering::Acquire) {
                        return parks;
                    }
                    // Bounded timeout only as a model-shim safety net: a
                    // lost wakeup would surface as TimedOut here.
                    match q.park(token, 0, Duration::from_millis(50)) {
                        Parked::TimedOut => panic!("lost wakeup: parked through the notify"),
                        Parked::Notified | Parked::Raced => parks += 1,
                    }
                }
            })
        };
        let notifier = {
            let q = Arc::clone(&q);
            let ready = Arc::clone(&ready);
            thread::spawn(move || {
                thread::yield_now();
                ready.store(true, Ordering::Release);
                q.notify_all();
            })
        };
        notifier.join().unwrap();
        let _parks = waiter.join().unwrap();
        assert!(!q.has_waiters(), "waiter must have deregistered itself");
    });
}

/// Keyed wake vs racing registration: with two waiters on different keys,
/// a `notify_where` admitting only one key must never strand the matching
/// waiter, whatever order registrations land in.
#[test]
fn queue_notify_where_admits_the_matching_key_under_races() {
    loom::model(|| {
        let q = Arc::new(WaitQueue::new());
        let released = Arc::new(AtomicUsize::new(0));

        let mk_waiter = |key: u64| {
            let q = Arc::clone(&q);
            let released = Arc::clone(&released);
            thread::spawn(move || loop {
                let token = q.epoch();
                if released.load(Ordering::Acquire) as u64 >= key {
                    return;
                }
                if q.park(token, key, Duration::from_millis(50)) == Parked::TimedOut {
                    panic!("waiter {key} stranded");
                }
            })
        };
        let w1 = mk_waiter(1);
        let w2 = mk_waiter(2);
        let notifier = {
            let q = Arc::clone(&q);
            let released = Arc::clone(&released);
            thread::spawn(move || {
                thread::yield_now();
                released.store(1, Ordering::Release);
                q.notify_where(|key| key <= 1);
                thread::yield_now();
                released.store(2, Ordering::Release);
                q.notify_where(|key| key <= 2);
            })
        };
        notifier.join().unwrap();
        w1.join().unwrap();
        w2.join().unwrap();
        assert!(!q.has_waiters());
    });
}

/// Waker registration vs notify on the queue backend: `register_waker`'s
/// epoch check must refuse (forcing a predicate re-check) whenever the
/// notify already happened, and an accepted registration must be fired.
#[test]
fn queue_register_waker_vs_notify_never_strands_the_task() {
    loom::model(|| {
        let q = Arc::new(WaitQueue::new());
        let ready = Arc::new(AtomicBool::new(false));
        let (count, waker) = count_waker();

        let registrar = {
            let q = Arc::clone(&q);
            let ready = Arc::clone(&ready);
            thread::spawn(move || {
                let mut reg = WakerReg::default();
                // One simulated poll: token, predicate, register-or-recheck.
                loop {
                    let token = q.epoch();
                    if ready.load(Ordering::Acquire) {
                        q.deregister(&mut reg);
                        return false; // resolved without parking
                    }
                    if q.register_waker(token, 0, &waker, &mut reg) {
                        return true; // pending; the notify must fire us
                    }
                }
            })
        };
        let notifier = {
            let q = Arc::clone(&q);
            let ready = Arc::clone(&ready);
            thread::spawn(move || {
                thread::yield_now();
                ready.store(true, Ordering::Release);
                q.notify_all();
            })
        };
        let parked = registrar.join().unwrap();
        notifier.join().unwrap();
        let fired = count.0.load(Ordering::SeqCst);
        if parked {
            assert_eq!(fired, 1, "accepted waker registration must be fired by the notify");
        } else {
            assert_eq!(fired, 0, "a refused/raced registration leaves no waker to fire");
        }
        assert!(!q.has_waiters(), "no entry may outlive its wait");
    });
}
