//! Partial rollback (paper §III-A): when a continuation misses the write
//! of its future, only the sub-tree rooted at the continuation re-executes
//! — not the whole top-level transaction. Symmetrically, a future that
//! misses an earlier-serialized write re-executes alone.

use parking_lot::Mutex;
use rtf::{Rtf, VBox};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Forces the continuation to read a box before its future (slowed down)
/// writes it: the continuation must re-execute, the root must not.
#[test]
fn continuation_reexecutes_without_top_level_restart() {
    let tm = Rtf::builder().workers(2).build();
    let b = VBox::new(0u64);
    let root_runs = Arc::new(AtomicU64::new(0));
    let cont_runs = Arc::new(AtomicU64::new(0));

    let (seen_first, seen_final) = tm.atomic(|tx| {
        root_runs.fetch_add(1, Ordering::Relaxed);
        let b2 = b.clone();
        let b3 = b.clone();
        let cont_runs2 = Arc::clone(&cont_runs);
        let first_read = Arc::new(Mutex::new(None::<u64>));
        let fr = Arc::clone(&first_read);
        let out = tx.fork(
            move |tx| {
                // Make the continuation's first read win the race.
                std::thread::sleep(std::time::Duration::from_millis(5));
                tx.write(&b2, 77);
            },
            move |tx, f| {
                cont_runs2.fetch_add(1, Ordering::Relaxed);
                let v = *tx.read(&b3);
                fr.lock().get_or_insert(v);
                let _ = tx.eval(f);
                v
            },
        );
        let first = first_read.lock().take();
        (first, out)
    });

    assert_eq!(seen_final, 77, "committed continuation saw the future's write");
    assert_eq!(seen_first, Some(0), "first attempt raced ahead and read the old value");
    assert_eq!(root_runs.load(Ordering::Relaxed), 1, "no top-level restart");
    assert!(cont_runs.load(Ordering::Relaxed) >= 2, "continuation re-executed");
    let s = tm.stats();
    assert!(s.sub_validation_aborts >= 1, "{s:?}");
    assert_eq!(s.continuation_restarts, 0, "{s:?}");
    assert_eq!(s.top_commits, 1);
}

/// A later-submitted future that reads what an earlier one writes: the
/// later future re-executes by itself until it observes the predecessor.
#[test]
fn future_reexecutes_on_missed_predecessor_write() {
    let tm = Rtf::builder().workers(2).build();
    let b = VBox::new(1u64);
    let f2_runs = Arc::new(AtomicU64::new(0));

    let out = tm.atomic(|tx| {
        let b1 = b.clone();
        let f1 = tx.submit(move |tx| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            tx.write(&b1, 10);
        });
        let b2 = b.clone();
        let runs = Arc::clone(&f2_runs);
        let f2 = tx.submit(move |tx| {
            runs.fetch_add(1, Ordering::Relaxed);
            *tx.read(&b2)
        });
        let _ = tx.eval(&f1);
        *tx.eval(&f2)
    });

    assert_eq!(out, 10, "f2 serialized after f1 must see its write");
    assert!(f2_runs.load(Ordering::Relaxed) >= 2, "f2 re-executed after missing the write");
    assert_eq!(tm.stats().top_commits, 1, "no top-level restart");
}

/// Re-executed continuations must leave no trace of their aborted writes.
#[test]
fn aborted_continuation_writes_are_discarded() {
    let tm = Rtf::builder().workers(2).build();
    let trigger = VBox::new(0u64);
    let side = VBox::new(0u64);

    tm.atomic(|tx| {
        let t2 = trigger.clone();
        let t3 = trigger.clone();
        let s2 = side.clone();
        tx.fork(
            move |tx| {
                std::thread::sleep(std::time::Duration::from_millis(5));
                tx.write(&t2, 1);
            },
            move |tx, f| {
                let v = *tx.read(&t3);
                // First attempt writes a bogus marker derived from the stale
                // read; the re-execution writes the real one.
                tx.write(&s2, 100 + v);
                let _ = tx.eval(f);
            },
        );
    });

    assert_eq!(*side.read_committed(), 101, "only the re-executed write survives");
    assert_eq!(*trigger.read_committed(), 1);
}

/// Nested partial rollback: an inner continuation conflict re-runs only
/// the inner closure; the outer continuation and root run once.
#[test]
fn nested_rollback_is_contained() {
    let tm = Rtf::builder().workers(3).build();
    let b = VBox::new(0u64);
    let outer_runs = Arc::new(AtomicU64::new(0));
    let inner_runs = Arc::new(AtomicU64::new(0));

    let out = tm.atomic(|tx| {
        let b_out = b.clone();
        let outer_runs2 = Arc::clone(&outer_runs);
        let inner_runs2 = Arc::clone(&inner_runs);
        tx.fork(
            move |tx| {
                // The outer future hosts the racing pair.
                let b_in = b_out.clone();
                let b_cont = b_out.clone();
                let inner_runs3 = Arc::clone(&inner_runs2);
                tx.fork(
                    move |tx| {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        let v = *tx.read(&b_in);
                        tx.write(&b_in, v + 5);
                    },
                    move |tx, f| {
                        inner_runs3.fetch_add(1, Ordering::Relaxed);
                        let v = *tx.read(&b_cont);
                        let _ = tx.eval(f);
                        v
                    },
                )
            },
            move |tx, f| {
                outer_runs2.fetch_add(1, Ordering::Relaxed);
                *tx.eval(f)
            },
        )
    });

    assert_eq!(out, 5, "inner continuation finally saw the inner future's write");
    assert!(inner_runs.load(Ordering::Relaxed) >= 2, "inner continuation re-executed");
    assert_eq!(outer_runs.load(Ordering::Relaxed), 1, "outer continuation ran once");
    assert_eq!(tm.stats().top_commits, 1);
    assert_eq!(*b.read_committed(), 5);
}
