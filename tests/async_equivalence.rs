//! Sync/async equivalence suite: the same seeded, order-dependent workload
//! driven through the three front-ends — blocking [`Rtf::run`], async
//! [`Rtf::run_async`] on the minimal executor, and ticketed async
//! [`Rtf::run_ticketed_async`] in a concurrent batch — must produce
//! bit-identical `rtf-replay-v1` artifacts. The async front-end is a new
//! *waiting* strategy, not a new semantics; the PR 6 differ proves it.
//!
//! All three drivers force commit order = submission order (sequentially,
//! or via pre-drawn tickets), which pins the commit-order log, the
//! order-sensitive state hash, and the lifecycle counters the artifact
//! compares.

use std::sync::Arc;

use rtf::{state_hash, CommitLog, ReplayArtifact, Rtf, VBox};
use rtf_txasync::{block_on, block_on_all};

/// Order-sensitive fold: the final value encodes the exact commit order.
fn mix(acc: u64, x: u64) -> u64 {
    (acc ^ x).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17)
}

/// Deterministic per-transaction payload (SplitMix64 over seed and index).
fn payload(seed: u64, k: u64) -> u64 {
    let mut z = seed.wrapping_add(k.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Which front-end drives the workload.
#[derive(Clone, Copy, Debug)]
enum Driver {
    /// Sequential blocking `run_ticketed` calls.
    Sync,
    /// Sequential `block_on(run_ticketed_async(..))` — one future at a
    /// time, each resolved entirely through the poll path.
    Async,
    /// All tickets drawn up front, all futures in flight at once on one
    /// `block_on_all` executor thread.
    AsyncBatch,
}

/// One recorded run: `txns` transactions folding seeded payloads into a
/// per-lane hash chain plus a contended shared total, committing in
/// submission order through the ordered lane.
fn record_run(seed: u64, shards: usize, txns: usize, driver: Driver) -> ReplayArtifact {
    let log = CommitLog::new();
    let tm = Rtf::builder().workers(2).ordered(shards).event_sink(Arc::clone(&log) as _).build();
    let chains: Arc<Vec<VBox<u64>>> = Arc::new((0..shards).map(|_| VBox::new(0u64)).collect());
    let total = VBox::new(0u64);

    let body = |ticket: rtf::OrderedTicket, p: u64| {
        let lane = ticket.ticket().lane as usize;
        let chains = Arc::clone(&chains);
        let total = total.clone();
        (ticket, move |tx: &mut rtf::Tx| {
            let acc = *tx.read(&chains[lane]);
            tx.write(&chains[lane], mix(acc, p));
            let t = *tx.read(&total);
            tx.write(&total, t + p % 7);
        })
    };

    match driver {
        Driver::Sync => {
            for k in 0..txns {
                let (ticket, f) = body(tm.ticket(), payload(seed, k as u64));
                tm.run_ticketed(ticket, f).expect("sync ticketed transaction failed");
            }
        }
        Driver::Async => {
            for k in 0..txns {
                let (ticket, f) = body(tm.ticket(), payload(seed, k as u64));
                block_on(tm.run_ticketed_async(ticket, f))
                    .expect("async ticketed transaction failed");
            }
        }
        Driver::AsyncBatch => {
            // Every ticket drawn before any future is polled: the batch is
            // genuinely concurrent (all in flight), yet the lane pins the
            // commit order to the draw order.
            let futs: Vec<_> = (0..txns)
                .map(|k| {
                    let (ticket, f) = body(tm.ticket(), payload(seed, k as u64));
                    tm.run_ticketed_async(ticket, f)
                })
                .collect();
            for r in block_on_all(futs) {
                r.expect("batched async ticketed transaction failed");
            }
        }
    }

    let hash =
        state_hash(chains.iter().map(|c| *c.read_committed()).chain([*total.read_committed()]));
    ReplayArtifact::from_run("async-equivalence", seed, shards as u32, &log, hash, &tm.stats())
}

/// The satellite claim: all three front-ends are bit-identical on the same
/// seed — commit-order log, state hash, and lifecycle counters.
#[test]
fn sync_async_and_batched_async_artifacts_are_bit_identical() {
    for (seed, shards) in [(3u64, 1usize), (0xFEED, 2)] {
        let sync = record_run(seed, shards, 60, Driver::Sync);
        assert_eq!(sync.counters.ordered_commits, 60);
        assert_eq!(sync.counters.tickets_abandoned, 0);
        for driver in [Driver::Async, Driver::AsyncBatch] {
            let run = record_run(seed, shards, 60, driver);
            assert_eq!(
                sync.diff(&run),
                None,
                "seed {seed:#x} diverged between sync and {driver:?}"
            );
        }
    }
}

/// Same property on a zero-worker runtime: the batch resolves entirely
/// through the poll path's helping (no OS thread ever blocks on
/// transaction state) and still matches the threaded sync baseline.
#[test]
fn zero_worker_async_batch_matches_the_sync_artifact() {
    let seed = 11u64;
    let sync = record_run(seed, 1, 40, Driver::Sync);

    let log = CommitLog::new();
    let tm = Rtf::builder().workers(0).ordered(1).event_sink(Arc::clone(&log) as _).build();
    let chain = VBox::new(0u64);
    let total = VBox::new(0u64);
    let futs: Vec<_> = (0..40)
        .map(|k| {
            let ticket = tm.ticket();
            let p = payload(seed, k as u64);
            let chain = chain.clone();
            let total = total.clone();
            tm.run_ticketed_async(ticket, move |tx| {
                let acc = *tx.read(&chain);
                tx.write(&chain, mix(acc, p));
                let t = *tx.read(&total);
                tx.write(&total, t + p % 7);
            })
        })
        .collect();
    for r in block_on_all(futs) {
        r.expect("zero-worker async transaction failed");
    }
    let hash = state_hash([*chain.read_committed(), *total.read_committed()]);
    let run = ReplayArtifact::from_run("async-equivalence", seed, 1, &log, hash, &tm.stats());
    assert_eq!(sync.diff(&run), None, "zero-worker async batch diverged from sync");
}

/// Plain (unordered) async equivalence: sequentially awaited `run_async`
/// transactions leave the same final state as sequential `run` calls.
#[test]
fn unordered_run_async_matches_run_sequentially() {
    let run = |asynchronous: bool| -> u64 {
        let tm = Rtf::builder().workers(2).build();
        let x = VBox::new(0u64);
        for k in 0..50u64 {
            let p = payload(21, k);
            let x = x.clone();
            let body = move |tx: &mut rtf::Tx| {
                let v = *tx.read(&x);
                tx.write(&x, mix(v, p));
            };
            if asynchronous {
                block_on(tm.run_async(body)).expect("async transaction failed");
            } else {
                tm.run(body).expect("sync transaction failed");
            }
        }
        *x.read_committed()
    };
    assert_eq!(run(false), run(true), "async front-end changed a sequential result");
}
