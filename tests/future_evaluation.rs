//! Evaluation semantics of transactional futures: Fig 1 and Fig 2 of the
//! paper, evaluation from other threads/transactions/outside any
//! transaction, and handle utilities.

use rtf::{Rtf, TxFuture, VBox};
use std::sync::Arc;

/// Fig 1: T0 submits TF1; TF1 submits TF2; T0 evaluates TF2 later. TF2 is
/// serialized at its submission inside TF1 — after TF1's `w(x, x1)` and
/// after T0's `w(y, y0)` (inherited snapshot), regardless of where the
/// evaluation happens.
#[test]
fn fig1_nested_submission_cross_evaluation() {
    let tm = Rtf::builder().workers(3).build();
    let x = VBox::new(0u64);
    let y = VBox::new(0u64);
    let (x_seen, y_seen) = tm.atomic(|tx| {
        tx.write(&y, 44); // w(y, y0) by T0 before the submission chain
        let tf1 = tx.submit({
            let (x, y) = (x.clone(), y.clone());
            move |tx| {
                tx.write(&x, 11); // w(x, x1) by TF1
                tx.submit({
                    let (x, y) = (x.clone(), y.clone());
                    move |tx| (*tx.read(&x), *tx.read(&y)) // TF2
                })
            }
        });
        let tf2 = tx.eval(&tf1);
        *tx.eval(&tf2)
    });
    assert_eq!((x_seen, y_seen), (11, 44), "TF2 must observe both ancestor writes");
}

/// Fig 2: T1 submits TF, T2 (another top-level transaction, another
/// thread) evaluates it — the future works as an inter-thread channel.
#[test]
fn fig2_future_as_cross_transaction_channel() {
    let tm = Arc::new(Rtf::builder().workers(2).build());
    let stock = VBox::new(500u64);
    let (sender, receiver) = std::sync::mpsc::channel::<TxFuture<u64>>();

    let t1 = {
        let (tm, stock) = (Arc::clone(&tm), stock.clone());
        std::thread::spawn(move || {
            tm.atomic(move |tx| {
                let f = tx.submit({
                    let stock = stock.clone();
                    move |tx| *tx.read(&stock) / 5
                });
                let _ = tx.eval(&f);
                sender.send(f).expect("receiver alive");
            });
        })
    };
    let t2 = {
        let tm = Arc::clone(&tm);
        std::thread::spawn(move || {
            let f = receiver.recv().expect("sender alive");
            tm.atomic(move |tx| *tx.eval(&f))
        })
    };
    t1.join().unwrap();
    assert_eq!(t2.join().unwrap(), 100);
}

/// Evaluating outside any transactional context blocks until the future
/// committed and returns its value (paper §III: evaluation does not
/// require a transactional context).
#[test]
fn evaluation_outside_transactions() {
    let tm = Rtf::builder().workers(2).build();
    let b = VBox::new(21u64);
    let f: TxFuture<u64> = tm.atomic(|tx| {
        let f = tx.submit({
            let b = b.clone();
            move |tx| *tx.read(&b) * 2
        });
        let _ = tx.eval(&f);
        f
    });
    assert_eq!(*f.wait(), 42);
    assert_eq!(*f.try_get().expect("already resolved"), 42);
    assert!(f.is_done());
}

/// `spawn_future` submits from outside any transaction (paper footnote 1:
/// an implicit empty top-level transaction).
#[test]
fn spawn_future_outside_transaction() {
    let tm = Rtf::builder().workers(2).build();
    let b = VBox::new(5u64);
    let b2 = b.clone();
    let f = tm.spawn_future(move |tx| *tx.read(&b2) + 1);
    assert_eq!(*f.wait(), 6);
}

/// Handles are cloneable and shareable: many threads evaluating the same
/// future all obtain the same value.
#[test]
fn many_evaluators_one_future() {
    let tm = Rtf::builder().workers(2).build();
    let b = VBox::new(9u64);
    let b2 = b.clone();
    let f = tm.spawn_future(move |tx| *tx.read(&b2) * 9);
    let handles: Vec<_> = (0..6)
        .map(|_| {
            let f = f.clone();
            std::thread::spawn(move || *f.wait())
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), 81);
    }
}

/// A future's return value can itself carry future handles (the paper's
/// trees of futures); evaluation composes.
#[test]
fn futures_returning_futures() {
    let tm = Rtf::builder().workers(3).build();
    let out = tm.atomic(|tx| {
        let outer: TxFuture<Vec<TxFuture<u64>>> =
            tx.submit(|tx| (0..4u64).map(|i| tx.submit(move |_tx| i * i)).collect());
        let inner = tx.eval(&outer);
        inner.iter().map(|f| *tx.eval(f)).sum::<u64>()
    });
    assert_eq!(out, 14); // 0² + 1² + 2² + 3²
}

/// Read-only futures skip validation when no read-write sub-transaction
/// committed meanwhile (§IV-E) — and still return correct values.
#[test]
fn read_only_future_optimization_correctness() {
    let tm = Rtf::builder().workers(2).build();
    let data: Vec<VBox<u64>> = (0..16).map(|i| VBox::new(i as u64)).collect();
    let data = Arc::new(data);
    for _ in 0..10 {
        let d = Arc::clone(&data);
        let sum = tm.atomic_ro(move |tx| {
            let futs: Vec<_> = (0..4)
                .map(|s| {
                    let d = Arc::clone(&d);
                    tx.submit(move |tx| (s * 4..(s + 1) * 4).map(|i| *tx.read(&d[i])).sum::<u64>())
                })
                .collect();
            futs.iter().map(|f| *tx.eval(f)).sum::<u64>()
        });
        assert_eq!(sum, (0..16u64).sum());
    }
    let s = tm.stats();
    assert!(s.ro_validation_skips > 0, "the §IV-E skip should trigger: {s:?}");
}
